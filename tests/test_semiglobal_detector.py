"""Unit tests for the semi-global (localized) detection protocol
(Algorithm 2)."""

import pytest

from repro.core import (
    NearestNeighborDistance,
    OutlierQuery,
    SemiGlobalOutlierDetector,
    make_point,
)
from repro.core.errors import ConfigurationError, ProtocolError


def _detector(sensor_id=0, neighbors=(1,), d=2, n=1, variant="refined"):
    query = OutlierQuery(NearestNeighborDistance(), n=n)
    return SemiGlobalOutlierDetector(
        sensor_id, query, hop_diameter=d, neighbors=neighbors, variant=variant
    )


def _points(values, origin=0, hop=0):
    return [
        make_point([float(v)], origin=origin, epoch=i, hop=hop)
        for i, v in enumerate(values)
    ]


class TestConstruction:
    def test_requires_positive_hop_diameter(self):
        with pytest.raises(ConfigurationError):
            _detector(d=0)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            _detector(variant="bogus")

    def test_both_variants_accepted(self):
        assert _detector(variant="paper").variant == "paper"
        assert _detector(variant="refined").variant == "refined"


class TestHopHandling:
    def test_outgoing_points_have_incremented_hops(self):
        det = _detector()
        message = det.add_local_points(_points([1.0, 30.0]))
        assert message is not None
        assert all(p.hop == 1 for p in message.payload_for(1))

    def test_received_point_recorded_with_its_hop(self):
        det = _detector()
        incoming = [make_point([5.0], origin=2, epoch=0, hop=1)]
        det.handle_message(1, incoming)
        held = next(iter(det.holdings))
        assert held.hop == 1

    def test_lower_hop_copy_replaces_higher(self):
        det = _detector(neighbors=(1, 2))
        point = make_point([5.0], origin=3, epoch=0)
        det.handle_message(1, [point.with_hop(2)])
        det.handle_message(2, [point.with_hop(1)])
        held = [p for p in det.holdings if p.same_rest(point)]
        assert len(held) == 1 and held[0].hop == 1

    def test_higher_hop_copy_is_ignored(self):
        det = _detector(neighbors=(1, 2))
        point = make_point([5.0], origin=3, epoch=0)
        det.handle_message(1, [point.with_hop(1)])
        assert det.handle_message(2, [point.with_hop(2)]) is None
        assert det.stats.points_ignored == 1

    def test_points_never_forwarded_beyond_the_hop_budget(self):
        det = _detector(d=2)
        # A point already at hop 2 (= d) must not be advertised further.
        incoming = [make_point([50.0], origin=5, epoch=0, hop=2)]
        message = det.handle_message(1, incoming)
        if message is not None:
            assert all(p.hop <= 2 for p in message.payload_for(1))
            assert all(not p.same_rest(incoming[0]) for p in message.payload_for(1))

    def test_local_points_must_have_hop_zero(self):
        det = _detector()
        with pytest.raises(ProtocolError):
            det.add_local_points([make_point([1.0], 0, 0, hop=1)])


class TestEvictionAndNeighborhood:
    def test_eviction_matches_by_rest_fields(self):
        det = _detector()
        pts = _points([1.0, 2.0])
        det.add_local_points(pts)
        det.evict_points([pts[0].with_hop(2)])
        assert pts[0] not in det.holdings

    def test_neighborhood_change_resets_bookkeeping(self):
        det = _detector(neighbors=(1,))
        det.add_local_points(_points([1.0, 20.0]))
        assert det.sent_to(1)
        det.neighborhood_changed({2})
        assert det.sent_to(1) == set()
        assert det.neighbors == {2}

    def test_update_local_data_is_a_single_event(self):
        det = _detector()
        pts = _points([1.0, 2.0])
        det.add_local_points(pts)
        before = det.stats.events_processed
        det.update_local_data(_points([3.0]), pts[:1])
        assert det.stats.events_processed == before + 1

    def test_message_from_non_neighbor_rejected(self):
        det = _detector(neighbors=(1,))
        with pytest.raises(ProtocolError):
            det.handle_message(9, _points([1.0], origin=9, hop=1))


class TestSuppression:
    def test_no_resend_of_points_the_neighbor_already_has(self):
        det = _detector()
        message = det.add_local_points(_points([1.0, 30.0]))
        sent_once = set(message.payload_for(1))
        # Processing an unrelated event must not resend the same points.
        second = det.add_local_points(_points([2.0], origin=0))
        if second is not None:
            assert not (set(second.payload_for(1)) & sent_once)

    def test_estimate_covers_all_hops(self):
        det = _detector(d=2, n=1)
        det.add_local_points(_points([20.0, 20.5]))
        det.handle_message(1, [make_point([90.0], origin=4, epoch=0, hop=2)])
        assert [p.values[0] for p in det.estimate()] == [90.0]
