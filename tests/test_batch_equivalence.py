"""Batched-vs-sequential equivalence: the block event path is an exact
re-implementation, not an approximation.

The batched tick machinery -- ``NeighborhoodIndex.apply_batch`` block
evictions/insertions, the ``ScoreCache`` batch dirty-marking and bulk
rescore, and the detectors' per-tick ``EventBatch`` staging -- must be
*byte-identical* to applying the same events one at a time through the
established per-event path.  These tests force the block machinery on at
degenerate sizes (``BATCH_BLOCK_THRESHOLD = -1``), sweep the splice chunk
width across its boundary cases, and drive randomized tie-heavy streams
through every registered metric, comparing full structural snapshots and
detector transcripts against the sequential oracle.
"""

from __future__ import annotations

import random

import pytest

import repro.core.index as index_mod
import repro.core.rescoring as rescoring_mod
from repro.baselines.centralized import CentralizedAggregator
from repro.core.batch import EventBatch
from repro.core.global_detector import GlobalOutlierDetector
from repro.core.index import NeighborhoodIndex
from repro.core.metrics import metric_from_name, registered_metrics
from repro.core.points import DataPoint
from repro.core.outliers import OutlierQuery
from repro.core.ranking import (
    AverageKNNDistance,
    KthNearestNeighborDistance,
    NearestNeighborDistance,
)
from repro.core.rescoring import ScoreCache
from repro.core.semiglobal_detector import SemiGlobalOutlierDetector

#: Every registered metric with the parameters it needs in 2-d.
METRICS = [
    ("euclidean", {}),
    ("manhattan", {}),
    ("chebyshev", {}),
    ("weighted-euclidean", {"weights": (0.5, 2.0)}),
    ("mahalanobis", {"cov": ((1.0, 0.2), (0.2, 2.0))}),
]

assert sorted(name for name, _ in METRICS) == registered_metrics()


def _make_point(rng: random.Random, epoch: int) -> DataPoint:
    # Grid-heavy coordinates so equal-distance ties (the hard case of the
    # block splice) actually occur.
    values = (
        rng.choice([0.0, 1.0, 2.0, rng.random() * 4]),
        rng.choice([0.0, 1.0, rng.random() * 4]),
    )
    return DataPoint(values, origin=rng.randrange(3), epoch=epoch)


def _index_snapshot(ix: NeighborhoodIndex):
    """Full structural state: per-slot arrays (bytes + typecodes), free
    list, occupied buffer -- anything the sequential path could differ in."""
    slots = []
    for slot, point in enumerate(ix._points):
        if point is None:
            slots.append(None)
        else:
            slots.append(
                (
                    point,
                    ix._dists[slot].typecode,
                    ix._dists[slot].tobytes(),
                    ix._nbrs[slot].typecode,
                    ix._nbrs[slot].tobytes(),
                )
            )
    return slots, list(ix._free), ix._occ_slots.tobytes()


def _drive_batches(metric_name, params, monkeypatch, *, seed, trials, steps):
    """Randomized mixed batches through the forced block path vs the
    sequential oracle, comparing full snapshots after every tick."""
    monkeypatch.setattr(index_mod, "BATCH_BLOCK_THRESHOLD", -1)
    rng = random.Random(seed)
    for trial in range(trials):
        size = rng.choice([6, 15, 31, 32, 33, 48])
        epoch = [0]

        def mk():
            epoch[0] += 1
            return _make_point(rng, epoch[0])

        blocked = NeighborhoodIndex(metric=metric_from_name(metric_name, **params))
        oracle = NeighborhoodIndex(metric=metric_from_name(metric_name, **params))
        live = [mk() for _ in range(size)]
        for point in live:
            blocked.add(point)
            oracle.add(point)
        for step in range(steps):
            evicts = rng.sample(live, rng.randrange(0, min(8, len(live)) + 1))
            adds = [mk() for _ in range(rng.randrange(0, 9))]
            if evicts and rng.random() < 0.3:
                # The same point leaves and re-enters within one tick.
                adds.append(evicts[0])
            if adds and rng.random() < 0.2:
                adds.append(adds[0])  # duplicate add within the batch
            blocked.apply_batch(
                EventBatch(adds=list(adds), evicts=list(evicts), replaces=[])
            )
            for point in evicts:
                oracle.discard(point)
            for point in adds:
                oracle.add(point)
            assert _index_snapshot(blocked) == _index_snapshot(oracle), (
                f"divergence: metric={metric_name} trial={trial} step={step}"
            )
            live = [p for p in live if p not in evicts]
            for p in adds:
                if p not in live:
                    live.append(p)


@pytest.mark.parametrize("metric_name,params", METRICS)
def test_forced_block_matches_sequential(metric_name, params, monkeypatch):
    _drive_batches(metric_name, params, monkeypatch, seed=7, trials=6, steps=6)


def test_block_path_across_splice_chunk_boundaries(monkeypatch):
    """The chunked splice must be exact when the survivor count is below,
    equal to, above, and not a multiple of the chunk width."""
    for chunk in (1, 2, 3, 7):
        monkeypatch.setattr(index_mod, "SPLICE_CHUNK_ROWS", chunk)
        _drive_batches(
            "euclidean", {}, monkeypatch, seed=100 + chunk, trials=3, steps=5
        )


def test_single_event_batches_match(monkeypatch):
    """Degenerate one-event batches through the forced block path."""
    monkeypatch.setattr(index_mod, "BATCH_BLOCK_THRESHOLD", -1)
    rng = random.Random(11)
    blocked = NeighborhoodIndex()
    oracle = NeighborhoodIndex()
    live = []
    for epoch in range(60):
        point = _make_point(rng, epoch)
        if live and rng.random() < 0.4:
            victim = rng.choice(live)
            blocked.apply_batch(EventBatch(adds=[], evicts=[victim], replaces=[]))
            oracle.discard(victim)
            live.remove(victim)
        blocked.apply_batch(EventBatch(adds=[point], evicts=[], replaces=[]))
        oracle.add(point)
        live.append(point)
        assert _index_snapshot(blocked) == _index_snapshot(oracle)


def test_same_point_evicted_and_readded_in_one_tick(monkeypatch):
    monkeypatch.setattr(index_mod, "BATCH_BLOCK_THRESHOLD", -1)
    rng = random.Random(13)
    points = [_make_point(rng, e) for e in range(20)]
    blocked = NeighborhoodIndex()
    oracle = NeighborhoodIndex()
    for p in points:
        blocked.add(p)
        oracle.add(p)
    churn = points[:6]
    fresh = [_make_point(rng, 100 + e) for e in range(6)]
    blocked.apply_batch(
        EventBatch(adds=churn + fresh, evicts=list(churn), replaces=[])
    )
    for p in churn:
        oracle.discard(p)
    for p in churn + fresh:
        oracle.add(p)
    assert _index_snapshot(blocked) == _index_snapshot(oracle)


@pytest.mark.parametrize(
    "ranking_factory",
    [
        lambda: AverageKNNDistance(4),
        lambda: KthNearestNeighborDistance(3),
        lambda: NearestNeighborDistance(),
    ],
    ids=["avg-knn", "kth-nn", "nearest"],
)
def test_scorecache_bulk_rescore_matches_scalar(ranking_factory, monkeypatch):
    """The vectorized whole-dirty-set rescore must leave the cache in the
    same state -- order, scores, τ buffer -- as the scalar per-slot loop."""

    def cache_state(cache):
        return (
            list(cache._order),
            dict(cache._score),
            cache._tau[:96].tobytes(),
            set(cache._dirty),
        )

    rng = random.Random(29)
    for trial in range(12):
        index = NeighborhoodIndex()
        bulk = ScoreCache(index, ranking_factory(), max_hop=None)
        index.attach(bulk)
        live = []
        for epoch in range(36):
            point = _make_point(rng, epoch)
            index.add(point)
            live.append(point)
        for _ in range(4):
            victim = live.pop(rng.randrange(len(live)))
            index.discard(victim)
        bulk._dirty.update(
            slot for slot, p in enumerate(index._points) if p is not None
        )
        scalar = ScoreCache(index, ranking_factory(), max_hop=None)
        scalar._order = list(bulk._order)
        scalar._score = dict(bulk._score)
        scalar._tau = bulk._tau.copy()
        scalar._dirty = set(bulk._dirty)
        scalar._members = bulk._members
        scalar._key_count = dict(bulk._key_count)
        monkeypatch.setattr(rescoring_mod, "BULK_RESCORE_MIN", 1)
        bulk._rescore_dirty()
        monkeypatch.setattr(rescoring_mod, "BULK_RESCORE_MIN", 10**9)
        scalar._rescore_dirty()
        assert cache_state(bulk) == cache_state(scalar), f"trial {trial}"


def _transcript(detector, ticks):
    out = []
    for adds, evicts in ticks:
        out.append(detector.update_local_data(adds, evicts))
    return out


def _make_ticks(rng, warm, count):
    """A tick schedule mixing multi-event, single-event and churn ticks."""
    epoch = [1000]

    def mk():
        epoch[0] += 1
        return _make_point(rng, epoch[0])

    live = list(warm)
    ticks = []
    for t in range(count):
        if t % 3 == 2:
            adds = [mk()]  # degenerate single-event tick
            evicts = [live[0]] if live else []
        else:
            evicts = rng.sample(live, min(len(live), rng.randrange(0, 5)))
            adds = [mk() for _ in range(rng.randrange(1, 6))]
            if evicts and rng.random() < 0.4:
                adds.append(evicts[0])  # same-point churn within the tick
        ticks.append((adds, evicts))
        live = [p for p in live if p not in evicts] + [
            p for p in adds if p not in live
        ]
    return ticks


@pytest.mark.parametrize("metric_name,params", METRICS)
def test_global_detector_transcripts_identical(metric_name, params, monkeypatch):
    """Same tick sequence, batched on vs off: every emitted message, the
    holdings and the estimate must be identical."""
    monkeypatch.setattr(index_mod, "BATCH_BLOCK_THRESHOLD", -1)
    rng = random.Random(31)
    ranking = AverageKNNDistance(3, metric=metric_from_name(metric_name, **params))
    warm = [_make_point(rng, e) for e in range(24)]
    ticks = _make_ticks(rng, warm, 8)
    transcripts = []
    states = []
    for batched in (True, False):
        detector = GlobalOutlierDetector(
            0,
            OutlierQuery(ranking, n=3),
            neighbors=[1, 2],
            indexed=True,
            batched=batched,
        )
        detector.add_local_points(warm)
        detector.initialize()
        transcripts.append(_transcript(detector, ticks))
        states.append((detector.holdings, detector.estimate()))
    assert transcripts[0] == transcripts[1]
    assert states[0] == states[1]


def test_semiglobal_detector_transcripts_identical(monkeypatch):
    monkeypatch.setattr(index_mod, "BATCH_BLOCK_THRESHOLD", -1)
    for metric_name, params in (("euclidean", {}), ("manhattan", {})):
        rng = random.Random(37)
        ranking = AverageKNNDistance(
            3, metric=metric_from_name(metric_name, **params)
        )
        warm = [_make_point(rng, e) for e in range(20)]
        ticks = _make_ticks(rng, warm, 8)
        transcripts = []
        states = []
        for batched in (True, False):
            detector = SemiGlobalOutlierDetector(
                0,
                OutlierQuery(ranking, n=3),
                hop_diameter=2,
                neighbors=[1, 2],
                indexed=True,
                batched=batched,
            )
            detector.add_local_points(warm)
            detector.initialize()
            transcripts.append(_transcript(detector, ticks))
            states.append((detector.holdings, detector.estimate()))
        assert transcripts[0] == transcripts[1], metric_name
        assert states[0] == states[1], metric_name


def test_centralized_aggregator_batched_matches(monkeypatch):
    """Window replacement and node churn through the aggregator: batched
    index application must publish the same outliers as sequential."""
    monkeypatch.setattr(index_mod, "BATCH_BLOCK_THRESHOLD", -1)
    rng = random.Random(41)
    query = OutlierQuery(AverageKNNDistance(3), n=4)
    batched = CentralizedAggregator(query, indexed=True, batched=True)
    sequential = CentralizedAggregator(query, indexed=True, batched=False)
    windows = {
        node: [_make_point(rng, node * 100 + e) for e in range(12)]
        for node in range(3)
    }
    for node, points in windows.items():
        batched.update_window(node, points)
        sequential.update_window(node, points)
    for round_no in range(5):
        node = rng.randrange(3)
        current = windows[node]
        # Overlapping replacement: some points persist across windows (and
        # across nodes via shared epochs), some churn.
        kept = [p for p in current if rng.random() < 0.6]
        fresh = [
            _make_point(rng, 1000 + round_no * 50 + e)
            for e in range(rng.randrange(1, 6))
        ]
        windows[node] = kept + fresh
        batched.update_window(node, windows[node])
        sequential.update_window(node, windows[node])
        assert batched.compute_outliers() == sequential.compute_outliers()
        assert batched.union() == sequential.union()
    batched.forget(1)
    sequential.forget(1)
    assert batched.compute_outliers() == sequential.compute_outliers()
    assert batched.union() == sequential.union()
