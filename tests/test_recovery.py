"""Fault-tolerant execution (``repro.recovery``).

Three layers under test, mirroring the module structure:

* **serialization** -- checkpoint capture/restore is a loss-free deep copy:
  a deployment frozen mid-run and resumed finishes with a transcript
  byte-identical (``SimulationResult.canonical_json``) to the uninterrupted
  run, across every registered metric space (hypothesis drives the cut
  point).  The content-addressed :class:`CheckpointStore` detects silent
  corruption and quarantines it aside.
* **supervision** -- a sharded run that loses a worker to an injected
  SIGKILL/SIGSTOP restarts it from the last snapshot, replays the journal,
  and still produces the byte-identical transcript; a supervised sweep that
  loses a pool worker retries and completes with an identical store, and a
  deterministically crashing scenario is quarantined as poison instead of
  wedging the sweep.
* **chaos plans** -- the ``--chaos`` mini-language parses deterministically,
  fires each action exactly once, and is rejected up front when the
  supervisor cannot possibly detect the injected fault (hang without a
  timeout) or recover from it (shard chaos without recovery).
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Dict, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import Algorithm, DetectionConfig
from repro.core.errors import (
    CheckpointError,
    ConfigurationError,
    ExperimentError,
    SimulationError,
)
from repro.datasets.loader import build_intel_lab_dataset
from repro.experiments.sweeps import METRIC_VARIANTS
from repro.orchestrator import executor
from repro.orchestrator.executor import clear_memory, run_scenarios
from repro.orchestrator.store import ResultStore
from repro.recovery import (
    ChaosPlan,
    CheckpointPolicy,
    CheckpointStore,
    RecoveryConfig,
    capture_state,
    restore_state,
)
from repro.simulator.engine import Simulator
from repro.wsn.deployment import build_deployment
from repro.wsn.results import SimulationResult
from repro.wsn.runner import collect_result, run_scenario, schedule_workload
from repro.wsn.scenario import ScenarioConfig


@pytest.fixture(autouse=True)
def _fresh_memory():
    clear_memory()
    yield
    clear_memory()


def metric_scenario(metric: str, metric_params) -> ScenarioConfig:
    """A small 4-d scenario exercising one registered metric space."""
    return ScenarioConfig(
        detection=DetectionConfig(
            algorithm=Algorithm.SEMI_GLOBAL, ranking="nn", n_outliers=4,
            k=4, window_length=2, hop_diameter=2, metric=metric,
            metric_params=metric_params,
        ),
        node_count=12,
        rounds=2,
        extra_channels=1,
        seed=0,
    )


def shard_scenario(seed: int = 0) -> ScenarioConfig:
    """Small but epoch-rich: enough barriers for mid-run chaos triggers."""
    return ScenarioConfig(
        detection=DetectionConfig(
            algorithm=Algorithm.SEMI_GLOBAL, ranking="knn", n_outliers=4,
            k=4, window_length=3, hop_diameter=2,
        ),
        node_count=16,
        rounds=3,
        seed=seed,
    )


def sweep_scenario(seed: int = 0) -> ScenarioConfig:
    return ScenarioConfig(
        detection=DetectionConfig(window_length=3), node_count=6, rounds=4,
        seed=seed,
    )


#: Fault-free transcripts, computed once and shared across chaos variants.
_BASELINES: Dict[ScenarioConfig, str] = {}


def golden(scenario: ScenarioConfig) -> str:
    if scenario not in _BASELINES:
        _BASELINES[scenario] = run_scenario(scenario).canonical_json()
    return _BASELINES[scenario]


# ----------------------------------------------------------------------
# Chaos plan parsing
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_parse_round_trips_each_entry(self):
        plan = ChaosPlan.parse(
            "kill:shard1@epoch3, hang:worker2@task5 ,kill:worker0"
        )
        assert [a.describe() for a in plan.pending()] == [
            "kill:shard1@epoch3",
            "hang:worker2@task5",
            "kill:worker0@task1",  # trigger count defaults to 1
        ]

    def test_take_fires_each_action_exactly_once(self):
        plan = ChaosPlan.parse("kill:shard1@epoch3")
        assert plan.take("shard", 1, 2) is None
        assert plan.take("worker", 1, 3) is None
        action = plan.take("shard", 1, 3)
        assert action is not None and action.kind == "kill"
        assert plan.take("shard", 1, 3) is None  # consumed
        assert not plan and plan.fired == [action]

    def test_has_filters_by_target_and_kind(self):
        plan = ChaosPlan.parse("hang:shard0@epoch2")
        assert plan.has("shard") and plan.has("shard", "hang")
        assert not plan.has("shard", "kill") and not plan.has("worker")

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:shard1@epoch3",  # unknown fault kind
            "kill:shard1@task3",  # shards count epochs, not tasks
            "kill:worker1@epoch3",  # workers count tasks, not epochs
            "kill:shard1@epoch0",  # trigger counts are 1-based
            "kill shard1",  # malformed
            " , ",  # empty
        ],
    )
    def test_bad_specifications_are_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            ChaosPlan.parse(spec)


# ----------------------------------------------------------------------
# Checkpoint serialization + store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_put_get_round_trip_is_content_addressed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = store.put(b"snapshot bytes")
        assert store.get(key) == b"snapshot bytes"
        assert store.put(b"snapshot bytes") == key  # idempotent
        assert key in store and len(store) == 1

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            CheckpointStore(tmp_path).get("0" * 64)

    def test_corrupt_snapshot_is_quarantined_not_served(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = store.put(b"good bytes")
        store.path_for(key).write_bytes(b"rotted bytes")
        with pytest.raises(CheckpointError, match="digest"):
            store.get(key)
        # The bad file is moved aside, observable, and no longer a key.
        assert store.path_for(key).with_suffix(".corrupt").exists()
        assert key not in store

    def test_policy_validates_interval_and_skips_epoch_zero(self, tmp_path):
        policy = CheckpointPolicy(directory=str(tmp_path), every=3)
        assert [e for e in range(10) if policy.due(e)] == [3, 6, 9]
        with pytest.raises(CheckpointError):
            CheckpointPolicy(directory=str(tmp_path), every=0)


class TestCheckpointSerialization:
    def test_capture_restore_round_trip_with_meta(self):
        state, meta = restore_state(
            capture_state({"heap": [1, 2, 3]}, meta={"epoch": 7})
        )
        assert state == {"heap": [1, 2, 3]} and meta == {"epoch": 7}

    def test_foreign_bytes_are_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            restore_state(b"PNG\n{}\nblob")

    def test_unsupported_schema_is_rejected(self):
        payload = capture_state("state")
        magic, header, blob = payload.split(b"\n", 2)
        header = json.dumps({"schema": 999, "meta": {}}).encode()
        with pytest.raises(CheckpointError, match="schema"):
            restore_state(magic + b"\n" + header + b"\n" + blob)

    def test_unpicklable_state_is_a_checkpoint_error(self):
        with pytest.raises(CheckpointError, match="not checkpointable"):
            capture_state(lambda: None)

    def test_running_simulator_refuses_to_checkpoint(self):
        """Capture is only legal between events: a half-fired callback is
        not reconstructible, so the simulator itself enforces quiescence."""
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: pickle.dumps(simulator))
        with pytest.raises(SimulationError, match="quiescent"):
            simulator.run()
        # And through the checkpoint layer the refusal surfaces wrapped.
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: capture_state(simulator))
        with pytest.raises(CheckpointError, match="quiescent"):
            simulator.run()


class TestRoundTripProperties:
    """Freeze a deployment mid-run, thaw it, finish: byte-identical.

    Hypothesis drives the interruption point across the full observation
    interval; the parametrisation covers every registered metric space, so
    the snapshot layer is pinned against each detector configuration the
    paper's experiments use.
    """

    _cache: Dict[Tuple[str, Tuple], Tuple] = {}

    def _fixtures(self, metric, metric_params):
        cache_key = (metric, metric_params)
        if cache_key not in self._cache:
            scenario = metric_scenario(metric, metric_params)
            dataset = build_intel_lab_dataset(scenario.dataset_config())
            baseline = run_scenario(scenario, dataset).canonical_json()
            self._cache[cache_key] = (scenario, dataset, baseline)
        return self._cache[cache_key]

    @pytest.mark.parametrize(
        "metric,metric_params",
        [(metric, params) for _label, metric, params in METRIC_VARIANTS],
        ids=[label for label, _, _ in METRIC_VARIANTS],
    )
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.floats(min_value=0.02, max_value=0.98))
    def test_interrupted_run_resumes_byte_identical(
        self, metric, metric_params, cut
    ):
        scenario, dataset, baseline = self._fixtures(metric, metric_params)
        deployment = build_deployment(scenario, dataset)
        schedule_workload(deployment)
        deployment.simulator.run(until=cut * scenario.duration)

        payload = capture_state(deployment, meta={"cut": cut})
        restored, meta = restore_state(payload)
        assert meta == {"cut": cut}
        # The original must not share mutable state with the restored copy.
        assert restored is not deployment
        restored.simulator.run()
        assert collect_result(restored).canonical_json() == baseline


# ----------------------------------------------------------------------
# Supervised sharded execution
# ----------------------------------------------------------------------
class TestShardRecovery:
    def recovery(self, tmp_path, **overrides) -> RecoveryConfig:
        base = dict(
            checkpoint_every=2,
            directory=str(tmp_path),
            backoff_base=0.01,
            backoff_cap=0.05,
        )
        base.update(overrides)
        return RecoveryConfig(**base)

    def test_killed_shard_resumes_from_checkpoint_byte_identical(
        self, tmp_path
    ):
        scenario = shard_scenario()
        stats: dict = {}
        result = run_scenario(
            scenario,
            shards=2,
            recovery=self.recovery(tmp_path),
            chaos=ChaosPlan.parse("kill:shard1@epoch5"),
            recovery_stats=stats,
        )
        assert result.canonical_json() == golden(scenario)
        assert stats["enabled"] and stats["chaos"] == ["kill:shard1@epoch5"]
        assert stats["chaos_pending"] == []
        (restart,) = stats["restarts"]
        assert restart["shard"] == 1 and restart["attempt"] == 1
        # Kill at grant 5 with snapshots every 2 epochs: the worker resumes
        # from epoch 4's snapshot, not from genesis.
        assert restart["resumed_from_epoch"] == 4
        assert restart["replayed_epochs"] >= 1
        assert len(CheckpointStore(tmp_path)) >= 1

    def test_kill_before_first_checkpoint_replays_from_genesis(
        self, tmp_path
    ):
        scenario = shard_scenario()
        stats: dict = {}
        result = run_scenario(
            scenario,
            shards=2,
            recovery=self.recovery(tmp_path, checkpoint_every=10_000),
            chaos=ChaosPlan.parse("kill:shard0@epoch3"),
            recovery_stats=stats,
        )
        assert result.canonical_json() == golden(scenario)
        (restart,) = stats["restarts"]
        assert restart["resumed_from_epoch"] == 0
        # Kill fires right after the 3rd grant; whether the worker finished
        # that epoch's barrier before the signal landed is a process race,
        # so the journal replays either 3 or 4 epochs -- both from genesis.
        assert restart["replayed_epochs"] in (3, 4)

    def test_hung_shard_is_detected_and_restarted_byte_identical(
        self, tmp_path
    ):
        scenario = shard_scenario()
        stats: dict = {}
        result = run_scenario(
            scenario,
            shards=2,
            recovery=self.recovery(tmp_path, heartbeat_timeout=1.0),
            chaos=ChaosPlan.parse("hang:shard0@epoch4"),
            recovery_stats=stats,
        )
        assert result.canonical_json() == golden(scenario)
        (restart,) = stats["restarts"]
        assert "silent" in restart["reason"]

    def test_shard_chaos_auto_enables_recovery(self, tmp_path):
        scenario = shard_scenario()
        stats: dict = {}
        result = run_scenario(
            scenario,
            shards=2,
            chaos=ChaosPlan.parse("kill:shard1@epoch3"),
            recovery_stats=stats,
        )
        assert result.canonical_json() == golden(scenario)
        assert stats["enabled"] and len(stats["restarts"]) == 1

    def test_exhausted_restart_budget_is_fatal(self, tmp_path):
        with pytest.raises(SimulationError, match="restart budget"):
            run_scenario(
                shard_scenario(),
                shards=2,
                recovery=self.recovery(tmp_path, max_restarts=0),
                chaos=ChaosPlan.parse("kill:shard1@epoch3"),
            )

    def test_recovery_without_shards_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="shards"):
            run_scenario(shard_scenario(), recovery=self.recovery(tmp_path))

    def test_hang_chaos_without_heartbeat_timeout_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="heartbeat"):
            run_scenario(
                shard_scenario(),
                shards=2,
                recovery=self.recovery(tmp_path, heartbeat_timeout=None),
                chaos=ChaosPlan.parse("hang:shard0@epoch2"),
            )

    @pytest.mark.parametrize(
        "overrides",
        [
            {"checkpoint_every": 0},
            {"max_restarts": -1},
            {"backoff_base": -0.1},
            {"heartbeat_timeout": 0.0},
            {"scenario_timeout": -1.0},
            {"max_retries": -1},
        ],
    )
    def test_recovery_config_validation(self, tmp_path, overrides):
        with pytest.raises(ConfigurationError):
            self.recovery(tmp_path, **overrides)

    def test_backoff_grows_exponentially_to_the_cap(self, tmp_path):
        recovery = self.recovery(
            tmp_path, backoff_base=0.05, backoff_cap=0.15
        )
        assert [recovery.backoff(a) for a in (1, 2, 3, 4)] == pytest.approx(
            [0.05, 0.10, 0.15, 0.15]
        )


# ----------------------------------------------------------------------
# Supervised sweep execution
# ----------------------------------------------------------------------
def _always_crashes(scenario, shards=None, recovery=None, chaos=None):
    raise ValueError(f"deterministic bug for seed {scenario.seed}")


class TestSweepRecovery:
    def test_killed_pool_worker_retries_to_an_identical_store(
        self, tmp_path
    ):
        scenarios = [sweep_scenario(seed) for seed in range(4)]
        clean = ResultStore(tmp_path / "clean")
        run_scenarios(scenarios, workers=2, store=clean)

        clear_memory()
        chaotic = ResultStore(tmp_path / "chaotic")
        run_scenarios(
            scenarios,
            workers=2,
            store=chaotic,
            chaos=ChaosPlan.parse("kill:worker0@task1"),
        )

        def canonical(store: ResultStore) -> Dict[str, str]:
            return {
                path.name: SimulationResult.from_json_dict(
                    json.loads(path.read_text())
                ).canonical_json()
                for path in store.entries()
            }

        assert canonical(chaotic) == canonical(clean)
        assert len(chaotic) == len(scenarios)

    def test_hung_pool_worker_is_timed_out_and_work_completes(self, tmp_path):
        scenarios = [sweep_scenario(seed) for seed in range(3)]
        store = ResultStore(tmp_path)
        results = run_scenarios(
            scenarios,
            workers=2,
            store=store,
            recovery=RecoveryConfig(scenario_timeout=30.0),
            chaos=ChaosPlan.parse("hang:worker1@task1"),
        )
        assert len(results) == len(scenarios) == len(store)

    def test_poison_scenario_is_quarantined_not_wedged(
        self, tmp_path, monkeypatch
    ):
        # The executor resolves its worker as a module global at call time,
        # and the fork-started pool inherits the patched module.
        monkeypatch.setattr(
            executor, "run_scenario_worker", _always_crashes
        )
        scenarios = [sweep_scenario(seed) for seed in range(2)]
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError, match="poison"):
            run_scenarios(
                scenarios,
                workers=2,
                store=store,
                recovery=RecoveryConfig(max_retries=1),
            )
        markers = store.poison_entries()
        assert len(markers) == len(scenarios)
        payload = json.loads(markers[0].read_text())
        assert payload["attempts"] == 2  # first try + one retry
        assert "deterministic bug" in payload["reason"]
        # Poison markers never pollute the result-entry namespace.
        assert store.entries() == []

    def test_worker_hang_chaos_requires_a_scenario_timeout(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            run_scenarios(
                [sweep_scenario()],
                workers=2,
                chaos=ChaosPlan.parse("hang:worker0"),
            )


# ----------------------------------------------------------------------
# Result-store hardening (satellite)
# ----------------------------------------------------------------------
class TestResultStoreHardening:
    def test_undecodable_entry_is_quarantined_aside(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = sweep_scenario()
        path = store.path_for(scenario)
        store.root.mkdir(parents=True, exist_ok=True)
        path.write_text("this is not json {")
        assert store.get(scenario) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_wrong_scenario_entry_is_a_miss_but_not_quarantined(
        self, tmp_path
    ):
        store = ResultStore(tmp_path)
        target = sweep_scenario(seed=0)
        other = run_scenario(sweep_scenario(seed=9))
        store.root.mkdir(parents=True, exist_ok=True)
        path = store.path_for(target)
        path.write_text(json.dumps(other.to_json_dict(), sort_keys=True))
        assert store.get(target) is None
        assert path.exists()  # healthy file, just not an answer to this key

    def test_put_replaces_quarantined_entries_cleanly(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = sweep_scenario()
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for(scenario).write_text("garbage")
        assert store.get(scenario) is None
        result = run_scenario(scenario)
        store.put(result)
        fetched = store.get(scenario)
        assert fetched is not None
        assert fetched.canonical_json() == result.canonical_json()
        assert os.path.exists(
            store.path_for(scenario).with_suffix(".corrupt")
        )
