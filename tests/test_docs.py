"""Executable-docs suite: every fenced python snippet in README.md and
docs/*.md must run against the current API, and every relative link must
resolve.  This is the same check CI's ``docs`` job runs via
``tools/check_docs.py`` -- wired into tier-1 so drift fails locally first.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


def test_docs_exist():
    files = check_docs.markdown_files()
    names = {path.name for path in files}
    assert "README.md" in names
    assert {"ARCHITECTURE.md", "SCENARIOS.md", "BENCHMARKS.md"} <= names


def test_relative_links_resolve():
    assert check_docs.check_links(check_docs.markdown_files()) == []


def test_no_run_marker_exempts_a_snippet(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "```python\n# doc-snippet: no-run\nraise SystemExit(1)\n```\n"
        "\n"
        "```python\nprint('runs')\n```\n"
    )
    snippets = check_docs.python_snippets(page)
    assert len(snippets) == 1
    assert "print('runs')" in snippets[0][1]


def test_broken_relative_link_is_reported(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see [missing](does/not/exist.md)\n")
    failures = check_docs.check_links([page])
    assert len(failures) == 1
    assert "does/not/exist.md" in failures[0]


def _snippet_cases():
    for path in check_docs.markdown_files():
        for line, code in check_docs.python_snippets(path):
            yield pytest.param(
                path, line, code, id=f"{path.name}:{line}"
            )


@pytest.mark.parametrize("path,line,code", list(_snippet_cases()))
def test_snippet_executes(path, line, code):
    ok, message = check_docs.run_snippet(path, line, code)
    assert ok, message
