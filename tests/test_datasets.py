"""Tests for the dataset substrate: layouts, synthetic streams, anomaly
injection, missing-data imputation and dataset bundles."""

import pytest

from repro.core.errors import DatasetError
from repro.datasets import (
    DEFAULT_TRANSMISSION_RANGE,
    DatasetConfig,
    InjectionConfig,
    SensorDataset,
    TemperatureFieldModel,
    apply_missing_data,
    build_intel_lab_dataset,
    drop_readings,
    generate_readings,
    grid_layout,
    impute_missing,
    inject_anomalies,
    intel_lab_layout,
    random_layout,
)
from repro.network import Topology


class TestLayouts:
    @pytest.mark.parametrize("count", [2, 16, 32, 53])
    def test_intel_lab_layout_is_connected_at_paper_range(self, count):
        topo = Topology.from_positions(intel_lab_layout(count), DEFAULT_TRANSMISSION_RANGE)
        assert topo.is_connected()

    def test_layout_is_deterministic(self):
        assert intel_lab_layout(20) == intel_lab_layout(20)

    def test_positions_stay_inside_the_terrain(self):
        for x, y in intel_lab_layout(53, terrain_size=50.0).values():
            assert 0.0 <= x <= 50.0 and 0.0 <= y <= 50.0

    def test_grid_layout_shape(self):
        layout = grid_layout(3, 2, spacing=4.0)
        assert len(layout) == 6
        assert layout[4] == (4.0, 4.0)

    def test_random_layout_respects_min_spacing(self):
        layout = random_layout(10, terrain_size=50.0, seed=1, min_spacing=3.0)
        points = list(layout.values())
        for i, a in enumerate(points):
            for b in points[i + 1:]:
                assert ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5 >= 3.0

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            intel_lab_layout(0)
        with pytest.raises(DatasetError):
            grid_layout(0, 1, 1.0)


class TestSyntheticStreams:
    def test_streams_are_deterministic_given_the_seed(self):
        positions = intel_lab_layout(5)
        a = generate_readings(positions, epochs=4, model=TemperatureFieldModel(seed=3))
        b = generate_readings(positions, epochs=4, model=TemperatureFieldModel(seed=3))
        assert a == b

    def test_points_carry_temperature_and_coordinates(self):
        positions = intel_lab_layout(3)
        streams = generate_readings(positions, epochs=2)
        for node_id, points in streams.items():
            for point in points:
                assert point.origin == node_id
                assert point.dimension == 3
                assert point.values[1:] == positions[node_id]

    def test_nearby_sensors_read_similar_values(self):
        """Spatial correlation: neighbors differ less than far-apart sensors."""
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (45.0, 45.0)}
        model = TemperatureFieldModel(seed=1, measurement_noise=0.0, ar_noise=0.0)
        streams = generate_readings(positions, epochs=1, model=model)
        near = abs(streams[0][0].values[0] - streams[1][0].values[0])
        far = abs(streams[0][0].values[0] - streams[2][0].values[0])
        assert near <= far + 1e-9

    def test_temporal_trend_is_shared(self):
        model = TemperatureFieldModel(seed=1)
        assert model.temporal_component(0) == pytest.approx(0.0)
        assert model.temporal_component(75) != model.temporal_component(0)

    def test_invalid_epochs(self):
        with pytest.raises(DatasetError):
            generate_readings(intel_lab_layout(2), epochs=0)


class TestInjection:
    def test_spikes_move_the_temperature_substantially(self):
        positions = intel_lab_layout(4)
        clean = generate_readings(positions, epochs=30)
        config = InjectionConfig(spike_probability=0.2, stuck_probability=0.0,
                                 drift_probability=0.0, spike_magnitude=20.0, seed=5)
        corrupted, record = inject_anomalies(clean, config)
        assert record.count() > 0
        for node_id, points in corrupted.items():
            clean_by_epoch = {p.epoch: p for p in clean[node_id]}
            for point in points:
                if point.rest in record.spikes:
                    assert abs(point.values[0] - clean_by_epoch[point.epoch].values[0]) > 10.0

    def test_coordinates_are_never_corrupted(self):
        positions = intel_lab_layout(3)
        clean = generate_readings(positions, epochs=10)
        corrupted, _ = inject_anomalies(clean, InjectionConfig(spike_probability=0.3, seed=2))
        for node_id, points in corrupted.items():
            for point in points:
                assert point.values[1:] == positions[node_id]

    def test_stream_lengths_preserved(self):
        clean = generate_readings(intel_lab_layout(3), epochs=12)
        corrupted, _ = inject_anomalies(clean, InjectionConfig(seed=1))
        assert {k: len(v) for k, v in corrupted.items()} == {k: len(v) for k, v in clean.items()}

    def test_invalid_probability(self):
        with pytest.raises(DatasetError):
            InjectionConfig(spike_probability=1.5)


class TestMissingData:
    def test_drop_and_impute_restores_every_epoch(self):
        clean = generate_readings(intel_lab_layout(3), epochs=20)
        completed, imputed = apply_missing_data(clean, missing_probability=0.3,
                                                window_length=5, seed=4)
        for node_id, points in completed.items():
            assert [p.epoch for p in points] == [p.epoch for p in clean[node_id]]
        assert any(imputed.values())

    def test_imputed_value_is_the_preceding_window_average(self):
        from repro.core import make_point

        stream = [make_point([10.0, 0, 0], 0, 0), make_point([20.0, 0, 0], 0, 1)]
        completed = impute_missing(stream, expected_epochs=[0, 1, 2], window_length=2)
        assert completed[2].values[0] == pytest.approx(15.0)

    def test_first_sample_never_dropped(self):
        clean = generate_readings(intel_lab_layout(2), epochs=5)
        dropped = drop_readings(clean, missing_probability=0.9, seed=1)
        for node_id, points in dropped.items():
            assert points[0].epoch == clean[node_id][0].epoch

    def test_invalid_probability(self):
        with pytest.raises(DatasetError):
            drop_readings({}, missing_probability=1.0)


class TestSensorDataset:
    def test_build_pipeline_produces_consistent_bundle(self):
        dataset = build_intel_lab_dataset(DatasetConfig(node_count=6, epochs=8))
        assert dataset.node_count == 6
        assert dataset.epochs == 8
        assert set(dataset.positions) == set(dataset.streams)

    def test_windows_and_union(self):
        dataset = build_intel_lab_dataset(DatasetConfig(node_count=4, epochs=6))
        window = dataset.window(0, end_index=5, length=3)
        assert len(window) == 3
        union = dataset.union_window(5, 3)
        assert len(union) == 4 * 3

    def test_points_at_epoch(self):
        dataset = build_intel_lab_dataset(DatasetConfig(node_count=3, epochs=4))
        sample = dataset.points_at(2)
        assert set(sample) == {0, 1, 2}
        assert all(p.epoch == 2 for p in sample.values())

    def test_restrict_nodes(self):
        dataset = build_intel_lab_dataset(DatasetConfig(node_count=5, epochs=3))
        small = dataset.restrict_nodes([0, 2])
        assert small.node_ids == [0, 2]

    def test_mismatched_streams_rejected(self):
        from repro.core import make_point

        with pytest.raises(DatasetError):
            SensorDataset(positions={0: (0, 0)}, streams={1: [make_point([1], 1, 0)]})

    def test_wrong_origin_rejected(self):
        from repro.core import make_point

        with pytest.raises(DatasetError):
            SensorDataset(positions={0: (0, 0)}, streams={0: [make_point([1], 5, 0)]})
