"""Tests for top-n outlier selection, support-set helpers and the
sufficient-set fixpoint (equations (1)/(2))."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.outliers import OutlierQuery, ranked_points, top_n_outliers
from repro.core.points import make_point
from repro.core.ranking import AverageKNNDistance, NearestNeighborDistance
from repro.core.sufficient import compute_sufficient_set, satisfies_sufficiency
from repro.core.support import is_support_set, support_of_set, support_set


def _points(values, origin=0):
    return [make_point([float(v)], origin=origin, epoch=i) for i, v in enumerate(values)]


class TestTopN:
    def test_most_isolated_point_is_top_outlier(self):
        pts = _points([1.0, 1.5, 2.0, 50.0])
        top = top_n_outliers(NearestNeighborDistance(), pts, 1)
        assert top == [pts[3]]

    def test_order_is_most_outlying_first(self):
        pts = _points([0.0, 0.5, 20.0, 100.0])
        top = top_n_outliers(NearestNeighborDistance(), pts, 3)
        scores = [NearestNeighborDistance().score(p, pts) for p in top]
        assert scores == sorted(scores, reverse=True)

    def test_returns_all_points_when_n_exceeds_size(self):
        pts = _points([1.0, 2.0])
        assert set(top_n_outliers(NearestNeighborDistance(), pts, 10)) == set(pts)

    def test_n_zero_returns_empty(self):
        assert top_n_outliers(NearestNeighborDistance(), _points([1.0, 2.0]), 0) == []

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            top_n_outliers(NearestNeighborDistance(), _points([1.0]), -1)

    def test_deterministic_tie_breaking(self):
        # Two identical clusters: scores tie, the fixed order breaks the tie
        # identically on every call.
        pts = _points([0.0, 1.0, 10.0, 11.0])
        first = top_n_outliers(NearestNeighborDistance(), pts, 2)
        second = top_n_outliers(NearestNeighborDistance(), list(reversed(pts)), 2)
        assert first == second

    def test_ranked_points_covers_every_point(self):
        pts = _points([3.0, 1.0, 7.0])
        ranked = ranked_points(NearestNeighborDistance(), pts)
        assert {p for _, p in ranked} == set(pts)


class TestOutlierQuery:
    def test_requires_positive_n(self):
        with pytest.raises(ConfigurationError):
            OutlierQuery(NearestNeighborDistance(), n=0)

    def test_outlier_set_matches_list(self):
        query = OutlierQuery(NearestNeighborDistance(), n=2)
        pts = _points([0.0, 1.0, 30.0, 90.0])
        assert query.outlier_set(pts) == set(query.outliers(pts))

    def test_score_and_support_delegate_to_ranking(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        pts = _points([0.0, 4.0])
        assert query.score(pts[0], pts) == pytest.approx(4.0)
        assert query.support(pts[0], pts) == frozenset({pts[1]})


class TestSupportHelpers:
    def test_support_of_set_is_union_of_supports(self):
        ranking = AverageKNNDistance(k=2)
        pts = _points([0.0, 1.0, 2.0, 10.0, 11.0])
        union = support_of_set(ranking, [pts[0], pts[3]], pts)
        expected = set(ranking.support(pts[0], pts)) | set(ranking.support(pts[3], pts))
        assert union == expected

    def test_is_support_set_accepts_the_minimal_support(self):
        ranking = NearestNeighborDistance()
        pts = _points([0.0, 1.0, 5.0])
        assert is_support_set(ranking, pts[0], support_set(ranking, pts[0], pts), pts)

    def test_is_support_set_rejects_non_subsets(self):
        ranking = NearestNeighborDistance()
        pts = _points([0.0, 1.0])
        foreign = make_point([9.0], origin=9, epoch=9)
        assert not is_support_set(ranking, pts[0], [foreign], pts)

    def test_is_support_set_rejects_score_changing_subsets(self):
        ranking = NearestNeighborDistance()
        pts = _points([0.0, 1.0, 5.0])
        assert not is_support_set(ranking, pts[0], [pts[2]], pts)


class TestSufficientSet:
    def test_result_satisfies_equation_two(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        holdings = _points([0.5, 3.0, 6.0, 10.0, 11.0, 12.0])
        shared = set()
        sufficient = compute_sufficient_set(query, holdings, shared)
        assert satisfies_sufficiency(query, sufficient, holdings, shared)

    def test_sufficient_set_is_subset_of_holdings(self):
        query = OutlierQuery(AverageKNNDistance(k=2), n=2)
        holdings = _points([1.0, 2.0, 3.0, 40.0, 41.0, 90.0])
        sufficient = compute_sufficient_set(query, holdings, set())
        assert sufficient <= set(holdings)

    def test_contains_estimate_and_support(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        holdings = _points([0.0, 1.0, 50.0])
        sufficient = compute_sufficient_set(query, holdings, set())
        estimate = query.outliers(holdings)
        assert set(estimate) <= sufficient
        assert support_of_set(query.ranking, estimate, holdings) <= sufficient

    def test_precomputed_estimate_gives_same_result(self):
        query = OutlierQuery(AverageKNNDistance(k=2), n=2)
        holdings = _points([1.0, 2.0, 3.0, 40.0, 41.0, 90.0])
        shared = set(holdings[:2])
        plain = compute_sufficient_set(query, holdings, shared)
        estimate = query.outliers(holdings)
        support = support_of_set(query.ranking, estimate, holdings)
        precomputed = compute_sufficient_set(
            query, holdings, shared, estimate=estimate, estimate_support=support
        )
        assert plain == precomputed

    def test_section_51_example_sufficient_set(self):
        """The worked example of Section 5.1: Z_j = {3, 6} on the first step."""
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        a = 20
        d_i = [make_point([v], 0, i) for i, v in enumerate([0.5, 3.0, 6.0] + list(range(10, a + 1)))]
        sufficient = compute_sufficient_set(query, d_i, set())
        assert {p.values[0] for p in sufficient} == {3.0, 6.0}

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=2, max_size=14
        ),
        shared_size=st.integers(min_value=0, max_value=14),
        n=st.integers(min_value=1, max_value=3),
    )
    def test_fixpoint_always_satisfies_sufficiency(self, values, shared_size, n):
        query = OutlierQuery(AverageKNNDistance(k=2), n=n)
        holdings = _points(values)
        shared = set(holdings[: min(shared_size, len(holdings))])
        sufficient = compute_sufficient_set(query, holdings, shared)
        assert satisfies_sufficiency(query, sufficient, holdings, shared)
        assert sufficient <= set(holdings)
