"""Tests for the experiment harness (on a tiny profile) and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    ExperimentProfile,
    FigureResult,
    active_profile,
    clear_cache,
    run_example51,
    run_figure4,
)
from repro.experiments.common import PAPER_PROFILE, QUICK_PROFILE

#: A deliberately tiny profile so harness tests run in seconds.
TINY = ExperimentProfile(
    name="tiny",
    node_count=6,
    rounds=4,
    repetitions=1,
    window_sizes=(2, 3),
    outlier_counts=(1, 2),
    hop_diameters=(1,),
)


class TestProfiles:
    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert active_profile().name == "quick"

    def test_profile_selection_via_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert active_profile() is PAPER_PROFILE

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "huge")
        with pytest.raises(Exception):
            active_profile()

    def test_quick_profile_windows_fit_inside_rounds(self):
        assert max(QUICK_PROFILE.window_sizes) <= QUICK_PROFILE.rounds
        assert max(PAPER_PROFILE.window_sizes) <= PAPER_PROFILE.rounds


class TestFigureHarness:
    def test_figure4_on_tiny_profile_has_all_curves(self):
        clear_cache()
        tx, rx = run_figure4(TINY)
        for figure in (tx, rx):
            assert set(figure.series) == {"Centralized", "Global-NN", "Global-KNN"}
            assert figure.x_values == [2.0, 3.0]
            assert all(len(v) == 2 for v in figure.series.values())
            assert all(value >= 0 for series in figure.series.values() for value in series)

    def test_results_are_cached_across_figures(self):
        clear_cache()
        run_figure4(TINY)
        from repro.experiments.common import _CACHE

        cached = len(_CACHE)
        run_figure4(TINY)
        assert len(_CACHE) == cached

    def test_figure_result_report_and_series_access(self):
        figure = FigureResult(
            figure="demo", x_label="w", x_values=[1.0], series={"a": [0.5]}
        )
        assert "demo" in figure.report()
        assert figure.series_for("a") == [0.5]
        with pytest.raises(Exception):
            figure.series_for("missing")

    def test_example51_reports_distributed_advantage(self):
        figure = run_example51(sizes=((20, 10), (40, 20)))
        distributed = figure.series_for("distributed (points sent)")
        centralised = figure.series_for("centralised on one sensor (points sent)")
        assert all(d < c for d, c in zip(distributed, centralised))


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--nodes", "6", "--rounds", "4"])
        assert args.command == "run"

    def test_run_command_executes_a_small_scenario(self, capsys):
        exit_code = main(
            ["run", "--nodes", "6", "--rounds", "4", "-w", "3", "-n", "2",
             "--algorithm", "global", "--ranking", "nn"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "accuracy_exact" in captured

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "42"])

    def test_run_json_flag_prints_machine_readable_summary(self, capsys):
        exit_code = main(
            ["run", "--nodes", "6", "--rounds", "4", "-w", "3", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["node_count"] == 6
        assert payload["scenario"]["detection"]["window_length"] == 3
        assert payload["scenario"]["detection"]["metric"] == "euclidean"
        assert "accuracy_exact" in payload["summary"]
        assert "avg_total_per_round" in payload["summary"]

    def test_run_with_metric_and_extra_channels(self, capsys):
        exit_code = main(
            ["run", "--nodes", "6", "--rounds", "4", "-w", "3", "--json",
             "--metric", "weighted-euclidean",
             "--metric-params", '{"weights": [1.0, 0.5, 0.02, 0.02]}',
             "--extra-channels", "1"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["detection"]["metric"] == "weighted-euclidean"
        assert payload["scenario"]["extra_channels"] == 1
        assert "accuracy_exact" in payload["summary"]

    def test_run_rejects_bad_metric_params(self, capsys):
        assert main(
            ["run", "--nodes", "6", "--rounds", "4",
             "--metric-params", "not json"]
        ) == 2
        assert main(
            ["run", "--nodes", "6", "--rounds", "4",
             "--metric", "weighted-euclidean"]  # missing required weights
        ) == 2


class TestSweepCli:
    def test_list_prints_registered_families(self, capsys):
        assert main(["sweep", "--list", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in (
            "figure4", "accuracy", "stress-loss", "scaling-nodes",
            "metric-sensitivity",
        ):
            assert name in out

    def test_list_is_sorted_with_scenario_counts(self, capsys):
        assert main(["sweep", "--list", "--profile", "tiny"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        names = [line.split()[0] for line in lines]
        assert names == sorted(names)
        # Every row carries the size of the family's grid at the profile.
        assert all("scenario(s)" in line for line in lines)
        by_name = {line.split()[0]: line for line in lines}
        assert "16 scenario(s)" in by_name["stress-loss"]
        assert "10 scenario(s)" in by_name["metric-sensitivity"]

    def test_sweep_without_name_fails(self, capsys):
        assert main(["sweep"]) == 2

    def test_sweep_runs_cold_then_warm_against_a_store(self, tmp_path, capsys):
        clear_cache()
        store = str(tmp_path / "store")
        argv = ["sweep", "imbalance", "--workers", "2", "--store", store,
                "--profile", "tiny", "--no-report"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "3 scenario(s), 3 unique, 3 simulated" in cold

        clear_cache()  # simulate a fresh process; only the disk tier remains
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm
        assert "3 from store" in warm

    def test_sweep_report_renders_tables(self, capsys):
        clear_cache()
        assert main(["sweep", "example51", "--profile", "tiny"]) == 0
        assert "Section 5.1 example" in capsys.readouterr().out

    def test_metric_sensitivity_sweep_cold_then_warm(self, tmp_path, capsys):
        """The schema-versioned store must serve every metric variant back
        warm: 5 metrics x 2 tiny windows = 10 distinct scenario keys."""
        clear_cache()
        store = str(tmp_path / "metric-store")
        argv = ["sweep", "metric-sensitivity", "--workers", "2",
                "--store", store, "--profile", "tiny", "--no-report"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "10 scenario(s), 10 unique, 10 simulated" in cold

        clear_cache()  # fresh process simulation; only the disk tier remains
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulated" in warm
        assert "10 from store" in warm

    def test_metric_sensitivity_report_covers_every_metric(self, capsys):
        clear_cache()
        assert main(["sweep", "metric-sensitivity", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        for label in ("Euclidean", "Manhattan", "Chebyshev",
                      "Weighted-Euclidean", "Mahalanobis"):
            assert label in out
        assert "injected-anomaly precision" in out
