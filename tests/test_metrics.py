"""The metric-space subsystem: axioms, kernel agreement, configuration.

Three layers of guarantees are pinned down here:

* **metric axioms** (property-based): identity of indiscernibles, symmetry
  and the triangle inequality, sampled over random vectors for every
  registered metric -- the anti-monotonicity/smoothness proofs of the
  ranking functions hold for any true metric, so the registry must only
  admit true metrics;
* **kernel-vs-pointwise bitwise agreement**: ``pairwise``/``rows`` must
  return the *same floats* as the scalar ``distance`` (a last-ulp
  disagreement flips ``≺`` tie-breaks and desynchronises the indexed and
  brute-force detector paths) -- including above numpy's pairwise-summation
  cutover (reductions of length > 8);
* **configuration plumbing**: eager validation of metric names/parameters
  in :class:`~repro.core.config.DetectionConfig`, canonical hashable
  ``metric_params``, JSON round-trips through
  :class:`~repro.wsn.scenario.ScenarioConfig`, and the multi-attribute
  dataset model that gives non-Euclidean metrics a real workload.
"""

from __future__ import annotations

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DetectionConfig
from repro.core.errors import ConfigurationError, RankingError
from repro.core.metrics import (
    EUCLIDEAN,
    ChebyshevMetric,
    EuclideanMetric,
    MahalanobisMetric,
    ManhattanMetric,
    Metric,
    WeightedEuclideanMetric,
    metric_from_name,
    registered_metrics,
)
from repro.core.points import distance, make_point
from repro.datasets.imputation import impute_missing
from repro.datasets.loader import DatasetConfig, build_intel_lab_dataset
from repro.datasets.synthetic import (
    EXTRA_CHANNEL_SPECS,
    MultiAttributeFieldModel,
    TemperatureFieldModel,
    generate_multiattribute_readings,
    generate_readings,
)
from repro.wsn.scenario import ScenarioConfig


def spd_cov(dim: int) -> tuple:
    """A deterministic symmetric positive-definite matrix of size ``dim``
    (diagonally dominant, with nonzero off-diagonal correlation)."""
    return tuple(
        tuple(
            float(dim) + 1.0 + i if i == j else 0.3 / (1 + abs(i - j))
            for j in range(dim)
        )
        for i in range(dim)
    )


def metric_for(name: str, dim: int) -> Metric:
    """Instantiate a registered metric with parameters sized for ``dim``."""
    if name == "weighted-euclidean":
        return metric_from_name(name, weights=tuple(0.5 + 0.25 * i for i in range(dim)))
    if name == "mahalanobis":
        return metric_from_name(name, cov=spd_cov(dim))
    return metric_from_name(name)


#: Bounded-but-varied coordinates: large enough to stress summation order,
#: small enough that squares cannot overflow.
coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vectors(dim: int):
    return st.lists(coordinate, min_size=dim, max_size=dim).map(tuple)


# ----------------------------------------------------------------------
# Metric axioms (property-based)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", registered_metrics())
@pytest.mark.parametrize("dim", [2, 5])
def test_metric_axioms_sampled(name, dim):
    metric = metric_for(name, dim)
    rng = random.Random(f"{name}-{dim}-axioms")  # str seeds are deterministic
    for _ in range(200):
        a = tuple(rng.uniform(-100.0, 100.0) for _ in range(dim))
        b = tuple(rng.uniform(-100.0, 100.0) for _ in range(dim))
        c = tuple(rng.uniform(-100.0, 100.0) for _ in range(dim))
        dab = metric.distance(a, b)
        # Identity: d(a, a) == 0, d(a, b) > 0 for a != b, never NaN.
        assert metric.distance(a, a) == 0.0
        assert dab > 0.0 if a != b else dab == 0.0
        # Symmetry must be exact (not approximate): both orders feed the
        # same tie-break comparisons.
        assert dab == metric.distance(b, a)
        # Triangle inequality, with a relative tolerance for floating-point
        # rounding in the two-leg sum.
        dac, dcb = metric.distance(a, c), metric.distance(c, b)
        assert dab <= (dac + dcb) * (1.0 + 1e-9) + 1e-9


@settings(max_examples=60, deadline=None)
@given(a=vectors(3), b=vectors(3))
@pytest.mark.parametrize("name", registered_metrics())
def test_symmetry_and_identity_hypothesis(name, a, b):
    metric = metric_for(name, 3)
    assert metric.distance(a, b) == metric.distance(b, a)
    assert metric.distance(a, a) == 0.0
    assert metric.distance(b, b) == 0.0
    if a != b:
        assert metric.distance(a, b) >= 0.0


# ----------------------------------------------------------------------
# Kernel-vs-pointwise bitwise agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", registered_metrics())
# dim 12 matters: numpy switches to pairwise summation for reductions of
# length > 8, which must not make a kernel disagree with the scalar path.
@pytest.mark.parametrize("dim", [1, 2, 3, 8, 12])
def test_kernels_bitwise_match_pointwise(name, dim):
    metric = metric_for(name, dim)
    rng = random.Random(f"{name}-{dim}-kernels")
    for count in (1, 2, 7, 23):
        X = [tuple(rng.uniform(-50.0, 50.0) for _ in range(dim)) for _ in range(count)]
        matrix = metric.pairwise(X)
        assert matrix.shape == (count, count)
        for i, a in enumerate(X):
            row = metric.rows(a, X)
            for j, b in enumerate(X):
                scalar = metric.distance(a, b)
                assert matrix[i, j] == scalar, (name, dim, i, j)
                assert row[j] == scalar, (name, dim, i, j)
        # The matrix diagonal is exactly zero (the ranking layer overwrites
        # it with +inf itself).
        assert all(matrix[i, i] == 0.0 for i in range(count))


def test_quantised_readings_tie_bitwise_across_paths():
    """Tenth-grid coordinates (not exactly representable) are the regime
    where recipe differences round mathematical ties apart."""
    rng = random.Random(99)
    for name in registered_metrics():
        metric = metric_for(name, 2)
        X = [(rng.randint(-40, 40) * 0.1, rng.randint(-40, 40) * 0.1) for _ in range(40)]
        matrix = metric.pairwise(X)
        for i, a in enumerate(X):
            row = metric.rows(a, X)
            for j, b in enumerate(X):
                assert matrix[i, j] == metric.distance(a, b) == row[j]


def test_euclidean_is_bit_identical_to_math_dist():
    rng = random.Random(7)
    for _ in range(300):
        dim = rng.randint(1, 6)
        a = tuple(rng.uniform(-1e3, 1e3) for _ in range(dim))
        b = tuple(rng.uniform(-1e3, 1e3) for _ in range(dim))
        assert EUCLIDEAN.distance(a, b) == math.dist(a, b)


def test_known_values():
    a, b = (0.0, 0.0), (3.0, 4.0)
    assert EuclideanMetric().distance(a, b) == 5.0
    assert ManhattanMetric().distance(a, b) == 7.0
    assert ChebyshevMetric().distance(a, b) == 4.0
    assert WeightedEuclideanMetric((4.0, 1.0)).distance(a, b) == pytest.approx(
        math.sqrt(4 * 9 + 16)
    )
    # Identity covariance reduces Mahalanobis to Euclidean.
    identity = ((1.0, 0.0), (0.0, 1.0))
    assert MahalanobisMetric(identity).distance(a, b) == pytest.approx(5.0)


def test_points_distance_accepts_a_metric():
    a = make_point([0.0, 0.0], 0, 0)
    b = make_point([3.0, 4.0], 0, 1)
    assert distance(a, b) == 5.0
    assert distance(a, b, metric=ManhattanMetric()) == 7.0


# ----------------------------------------------------------------------
# Registry and parameter validation
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registered_names(self):
        assert registered_metrics() == [
            "chebyshev",
            "euclidean",
            "manhattan",
            "mahalanobis",
            "weighted-euclidean",
        ] or set(registered_metrics()) == {
            "chebyshev", "euclidean", "manhattan", "mahalanobis",
            "weighted-euclidean",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            metric_from_name("minkowski")

    def test_case_insensitive(self):
        assert metric_from_name("  Manhattan ").name == "manhattan"

    def test_euclidean_is_shared_singleton(self):
        assert metric_from_name("euclidean") is EUCLIDEAN

    def test_missing_required_params_rejected(self):
        with pytest.raises(ConfigurationError):
            metric_from_name("weighted-euclidean")
        with pytest.raises(ConfigurationError):
            metric_from_name("mahalanobis")

    def test_unexpected_params_rejected(self):
        with pytest.raises(ConfigurationError):
            metric_from_name("euclidean", weights=(1.0,))

    def test_bad_weights_rejected(self):
        for weights in ((), (0.0,), (-1.0, 2.0), (float("nan"),), (float("inf"),)):
            with pytest.raises(ConfigurationError):
                WeightedEuclideanMetric(weights)

    def test_bad_cov_rejected(self):
        with pytest.raises(ConfigurationError):
            MahalanobisMetric(((1.0, 2.0),))  # not square
        with pytest.raises(ConfigurationError):
            MahalanobisMetric(((1.0, 2.0), (3.0, 4.0)))  # not symmetric
        with pytest.raises(ConfigurationError):
            MahalanobisMetric(((0.0, 0.0), (0.0, 0.0)))  # not positive definite
        with pytest.raises(ConfigurationError):
            MahalanobisMetric(((1.0, 0.99), (0.99, -1.0)))  # negative eigenvalue

    def test_dimension_mismatch_raises_ranking_error(self):
        with pytest.raises(RankingError):
            ManhattanMetric().distance((1.0,), (1.0, 2.0))
        with pytest.raises(RankingError):
            WeightedEuclideanMetric((1.0, 2.0)).distance((1.0,), (2.0,))
        with pytest.raises(RankingError):
            MahalanobisMetric(((1.0, 0.0), (0.0, 1.0))).rows((1.0,), [(2.0,)])
        # The default metric honors the same contract on every entry point
        # (math.dist's native ValueError must not leak through the kernels).
        with pytest.raises(RankingError):
            EuclideanMetric().distance((1.0,), (1.0, 2.0))
        with pytest.raises(RankingError):
            EuclideanMetric().rows((1.0,), [(1.0, 2.0)])
        with pytest.raises(RankingError):
            EuclideanMetric().pairwise([(1.0,), (1.0, 2.0)])

    def test_validate_dimension_hook(self):
        EUCLIDEAN.validate_dimension(7)  # unparameterised: any dimension
        WeightedEuclideanMetric((1.0, 2.0)).validate_dimension(2)
        with pytest.raises(RankingError):
            WeightedEuclideanMetric((1.0, 2.0)).validate_dimension(3)
        with pytest.raises(RankingError):
            MahalanobisMetric(((1.0, 0.0), (0.0, 1.0))).validate_dimension(4)

    def test_compatible_with(self):
        assert EUCLIDEAN.compatible_with(EuclideanMetric())
        assert not EUCLIDEAN.compatible_with(ManhattanMetric())
        assert WeightedEuclideanMetric((1.0, 2.0)).compatible_with(
            WeightedEuclideanMetric((1, 2))
        )
        assert not WeightedEuclideanMetric((1.0, 2.0)).compatible_with(
            WeightedEuclideanMetric((1.0, 3.0))
        )


# ----------------------------------------------------------------------
# DetectionConfig / ScenarioConfig plumbing
# ----------------------------------------------------------------------
class TestDetectionConfigMetric:
    def test_default_is_euclidean(self):
        config = DetectionConfig()
        assert config.metric == "euclidean"
        assert config.make_metric() is EUCLIDEAN
        assert config.make_ranking().metric is EUCLIDEAN

    def test_ranking_carries_the_configured_metric(self):
        config = DetectionConfig(metric="chebyshev")
        assert config.make_ranking().metric.name == "chebyshev"

    def test_unknown_metric_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(metric="taxicab")

    def test_invalid_params_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(metric="weighted-euclidean")  # missing weights
        with pytest.raises(ConfigurationError):
            DetectionConfig(
                metric="weighted-euclidean", metric_params=(("weights", (0.0,)),)
            )

    def test_params_frozen_to_canonical_hashable_form(self):
        config = DetectionConfig(
            metric="weighted-euclidean", metric_params={"weights": [1, 2, 3]}
        )
        assert config.metric_params == (("weights", (1.0, 2.0, 3.0)),)
        hash(config)  # dict-key use in the orchestrator's memory cache

    def test_mapping_and_pair_forms_are_equal(self):
        params_as_pairs = DetectionConfig(
            metric="weighted-euclidean", metric_params=(("weights", (1.0, 2.0)),)
        )
        params_as_mapping = DetectionConfig(
            metric="weighted-euclidean", metric_params={"weights": (1, 2)}
        )
        assert params_as_pairs == params_as_mapping

    def test_with_metric_copy(self):
        config = DetectionConfig().with_metric("manhattan")
        assert config.metric == "manhattan"
        assert config.make_metric().name == "manhattan"

    def test_alpha_validation_rejects_nonpositive_and_nonfinite(self):
        # The historical check let NaN through (NaN <= 0 is false).
        for alpha in (0.0, -1.0, float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ConfigurationError):
                DetectionConfig(ranking="count", alpha=alpha)

    def test_scenario_json_round_trip_preserves_metric(self):
        detection = DetectionConfig(
            metric="mahalanobis",
            metric_params=(("cov", spd_cov(4)),),
        )
        scenario = ScenarioConfig(
            detection=detection, node_count=4, rounds=3, extra_channels=1
        )
        # Through an actual JSON encode/decode: tuples become lists on the
        # wire and must freeze back to the identical canonical scenario.
        decoded = ScenarioConfig.from_json_dict(
            json.loads(json.dumps(scenario.to_json_dict()))
        )
        assert decoded == scenario
        assert hash(decoded) == hash(scenario)
        assert decoded.detection.make_metric().name == "mahalanobis"


# ----------------------------------------------------------------------
# Multi-attribute synthetic workload
# ----------------------------------------------------------------------
class TestMultiAttributeDatasets:
    def test_points_carry_reading_block_then_coordinates(self):
        positions = {0: (1.0, 2.0), 1: (3.0, 4.0)}
        model = MultiAttributeFieldModel(extra_channels=2, seed=5)
        streams = generate_multiattribute_readings(positions, epochs=3, model=model)
        for node_id, points in streams.items():
            for point in points:
                assert point.dimension == 5  # temp + 2 extras + (x, y)
                assert point.values[-2:] == positions[node_id]

    def test_primary_channel_matches_single_channel_model(self):
        """Channel 0 of the multi-attribute model is the plain temperature
        stream: adding channels must not perturb existing values."""
        positions = {0: (10.0, 10.0), 1: (40.0, 20.0)}
        single = generate_readings(
            positions, epochs=4, model=TemperatureFieldModel(seed=3)
        )
        multi = generate_multiattribute_readings(
            positions, epochs=4, model=MultiAttributeFieldModel(extra_channels=2, seed=3)
        )
        for node_id in positions:
            for a, b in zip(single[node_id], multi[node_id]):
                assert a.values[0] == b.values[0]

    def test_channels_live_on_distinct_scales(self):
        positions = {0: (25.0, 25.0)}
        model = MultiAttributeFieldModel(extra_channels=3, seed=1)
        streams = generate_multiattribute_readings(positions, epochs=10, model=model)
        temp, hum, light, volt = zip(*(p.values[:4] for p in streams[0]))
        assert 10 < sum(temp) / len(temp) < 35
        assert 20 < sum(hum) / len(hum) < 80
        assert sum(light) / len(light) > 100
        assert 2 < sum(volt) / len(volt) < 3.5

    def test_specs_cycle_beyond_presets(self):
        model = MultiAttributeFieldModel(extra_channels=len(EXTRA_CHANNEL_SPECS) + 1)
        assert model.reading_channels == len(EXTRA_CHANNEL_SPECS) + 2

    def test_imputation_averages_every_reading_channel(self):
        stream = [
            make_point([10.0, 50.0, 1.0, 2.0], origin=0, epoch=0),
            make_point([20.0, 70.0, 1.0, 2.0], origin=0, epoch=1),
            # epoch 2 missing
            make_point([30.0, 90.0, 1.0, 2.0], origin=0, epoch=3),
        ]
        completed = impute_missing(stream, [0, 1, 2, 3], window_length=2,
                                   reading_channels=2)
        imputed = completed[2]
        assert imputed.values == (15.0, 60.0, 1.0, 2.0)

    def test_dataset_config_extra_channels_flows_through(self):
        config = DatasetConfig(node_count=4, epochs=5, extra_channels=2)
        dataset = build_intel_lab_dataset(config)
        for points in dataset.streams.values():
            assert all(p.dimension == 5 for p in points)

    def test_zero_extra_channels_is_bit_identical_to_legacy_pipeline(self):
        base = DatasetConfig(node_count=4, epochs=6)
        again = DatasetConfig(node_count=4, epochs=6, extra_channels=0)
        first = build_intel_lab_dataset(base)
        second = build_intel_lab_dataset(again)
        assert first.streams == second.streams

    def test_scenario_extra_channels_validation(self):
        with pytest.raises(Exception):
            ScenarioConfig(node_count=4, rounds=3, extra_channels=-1)

    def test_scenario_rejects_metric_sized_for_wrong_dimension(self):
        """A parameterised metric that cannot measure the scenario's
        (3 + extra_channels)-dimensional points fails at construction, not
        mid-run."""
        four_weights = DetectionConfig(
            metric="weighted-euclidean",
            metric_params=(("weights", (1.0, 0.5, 0.02, 0.02)),),
        )
        with pytest.raises(ConfigurationError):
            ScenarioConfig(detection=four_weights, node_count=4, rounds=3)
        # The same detection fits once the workload is 4-dimensional.
        ScenarioConfig(
            detection=four_weights, node_count=4, rounds=3, extra_channels=1
        )
