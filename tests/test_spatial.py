"""Equivalence and correctness tests for the uniform-grid spatial index.

The grid kernel (:mod:`repro.core.spatial`) replaced the O(n^2) all-pairs
scan in topology construction and the all-placed-points scan in
``random_layout``.  Its contract is *bit-identical* results against the
retained brute-force oracles, so these tests sweep every layout generator
-- including the adversarial cases: pair distance exactly equal to the
radius, many points sharing one grid cell, and mostly-empty grids.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, DatasetError
from repro.core.spatial import GridIndex, brute_force_pairs
from repro.datasets.layout import (
    DEFAULT_TRANSMISSION_RANGE,
    grid_layout,
    intel_lab_layout,
    random_layout,
)
from repro.network.topology import Topology


def _coords(positions):
    """(xs, ys) arrays in ascending-id order from a layout mapping."""
    ids = sorted(positions)
    xs = np.array([positions[i][0] for i in ids], dtype=np.float64)
    ys = np.array([positions[i][1] for i in ids], dtype=np.float64)
    return xs, ys


def _pair_set(first, second):
    return set(zip(first.tolist(), second.tolist()))


# Every registered layout generator, at the paper's range and at a range
# that is NOT the grid cell size's natural fit.  The 10x10 grid at spacing
# exactly equal to the range is the boundary case: every lattice edge sits
# at distance == radius, where one misrounded comparison would flip
# hundreds of edges.
LAYOUTS = [
    pytest.param(intel_lab_layout(), DEFAULT_TRANSMISSION_RANGE, id="lab53"),
    pytest.param(
        intel_lab_layout(node_count=200, terrain_size=50.0),
        DEFAULT_TRANSMISSION_RANGE,
        id="lab200-dense",
    ),
    pytest.param(grid_layout(12, 9, spacing=5.0), 6.0, id="grid12x9"),
    pytest.param(
        grid_layout(10, 10, spacing=DEFAULT_TRANSMISSION_RANGE),
        DEFAULT_TRANSMISSION_RANGE,
        id="grid-boundary-distance-eq-range",
    ),
    pytest.param(
        random_layout(300, terrain_size=100.0, seed=7),
        8.0,
        id="random300",
    ),
    pytest.param(
        random_layout(40, terrain_size=200.0, seed=3),
        6.0,
        id="random-sparse-empty-cells",
    ),
]


class TestPairsEquivalence:
    @pytest.mark.parametrize("positions,radius", LAYOUTS)
    def test_grid_pairs_bit_identical_to_brute_oracle(self, positions, radius):
        xs, ys = _coords(positions)
        grid = GridIndex(xs, ys, cell_size=radius)
        ga, gb = grid.pairs_within_radius(radius)
        ba, bb = brute_force_pairs(xs, ys, radius)
        assert np.array_equal(ga, ba)
        assert np.array_equal(gb, bb)
        assert ga.dtype == ba.dtype == np.int64

    @pytest.mark.parametrize("positions,radius", LAYOUTS)
    def test_cell_size_mismatch_keeps_equivalence(self, positions, radius):
        # The cell size is a performance knob, never a correctness one.
        xs, ys = _coords(positions)
        oracle = _pair_set(*brute_force_pairs(xs, ys, radius))
        for cell in (radius / 3.0, radius * 2.5):
            grid = GridIndex(xs, ys, cell_size=cell)
            assert _pair_set(*grid.pairs_within_radius(radius)) == oracle

    def test_distance_exactly_equal_to_radius_is_an_edge(self):
        # hypot(3, 4) == 5.0 exactly in floating point.
        xs = np.array([0.0, 3.0, 100.0])
        ys = np.array([0.0, 4.0, 100.0])
        grid = GridIndex(xs, ys, cell_size=5.0)
        assert _pair_set(*grid.pairs_within_radius(5.0)) == {(0, 1)}
        # Nudging one coordinate by single ulps keeps the scalar-oracle
        # agreement even while the true distance hovers within rounding
        # error of the radius (math.hypot may legitimately still round to
        # exactly 5.0 here -- the contract is oracle agreement, not a
        # particular verdict).
        for steps in range(1, 6):
            x = 3.0
            for _ in range(steps):
                x = np.nextafter(x, 4.0)
            xs_near = np.array([0.0, x, 100.0])
            grid_near = GridIndex(xs_near, ys, cell_size=5.0)
            assert _pair_set(*grid_near.pairs_within_radius(5.0)) == _pair_set(
                *brute_force_pairs(xs_near, ys, 5.0)
            )
        # A clearly-outside pair is rejected.
        xs_out = np.array([0.0, 3.001, 100.0])
        grid_out = GridIndex(xs_out, ys, cell_size=5.0)
        assert _pair_set(*grid_out.pairs_within_radius(5.0)) == set()

    def test_many_points_sharing_one_cell(self):
        # Coincident and near-coincident points all land in the same cell;
        # the intra-cell upper-triangle block must enumerate every pair once.
        xs = np.array([1.0, 1.0, 1.0, 1.2, 1.4])
        ys = np.array([2.0, 2.0, 2.1, 2.0, 2.3])
        grid = GridIndex(xs, ys, cell_size=10.0)
        ga, gb = grid.pairs_within_radius(1.0)
        ba, bb = brute_force_pairs(xs, ys, 1.0)
        assert np.array_equal(ga, ba) and np.array_equal(gb, bb)
        assert len(_pair_set(ga, gb)) == 10  # all C(5,2) pairs within 1 m

    def test_zero_radius_pairs_coincident_points_only(self):
        xs = np.array([0.0, 0.0, 5.0])
        ys = np.array([1.0, 1.0, 1.0])
        grid = GridIndex(xs, ys, cell_size=2.0)
        assert _pair_set(*grid.pairs_within_radius(0.0)) == {(0, 1)}

    def test_degenerate_sizes(self):
        empty = GridIndex([], [], cell_size=1.0)
        a, b = empty.pairs_within_radius(5.0)
        assert a.size == b.size == 0
        single = GridIndex([3.0], [4.0], cell_size=1.0)
        a, b = single.pairs_within_radius(5.0)
        assert a.size == b.size == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            GridIndex([0.0], [0.0], cell_size=0.0)
        with pytest.raises(ConfigurationError):
            GridIndex([0.0, 1.0], [0.0], cell_size=1.0)
        grid = GridIndex([0.0], [0.0], cell_size=1.0)
        with pytest.raises(ConfigurationError):
            grid.pairs_within_radius(-1.0)


class TestPointQueries:
    def setup_method(self):
        self.positions = random_layout(120, terrain_size=60.0, seed=11)
        self.xs, self.ys = _coords(self.positions)
        self.grid = GridIndex(self.xs, self.ys, cell_size=7.0)

    def _brute_radius(self, x, y, radius):
        return sorted(
            i
            for i in range(self.xs.size)
            if math.hypot(x - self.xs[i], y - self.ys[i]) <= radius
        )

    def test_query_radius_matches_brute_scan(self):
        # Query positions both on and off indexed points, including spots
        # outside the terrain (whose cells were never occupied).
        queries = [
            (self.xs[0], self.ys[0]),
            (30.0, 30.0),
            (-5.0, 70.0),
            (61.3, 2.7),
        ]
        for x, y in queries:
            for radius in (0.0, 3.5, 7.0, 25.0):
                found = self.grid.query_radius(x, y, radius)
                assert found.tolist() == self._brute_radius(x, y, radius)

    def test_k_nearest_matches_brute_ranking(self):
        for x, y in ((30.0, 30.0), (self.xs[5], self.ys[5]), (-10.0, -10.0)):
            distances = np.hypot(x - self.xs, y - self.ys)
            ranking = np.lexsort((np.arange(self.xs.size), distances))
            for k in (1, 4, 17, 120):
                assert (
                    self.grid.k_nearest(x, y, k).tolist()
                    == ranking[:k].tolist()
                )

    def test_k_nearest_clamps_k_and_breaks_ties_by_index(self):
        xs = np.array([0.0, 1.0, 1.0, 2.0])
        ys = np.zeros(4)
        grid = GridIndex(xs, ys, cell_size=1.0)
        # Points 1 and 2 are equidistant from the query: ascending index wins.
        assert grid.k_nearest(1.0, 0.0, 3).tolist()[:2] == [1, 2]
        assert grid.k_nearest(0.0, 0.0, 99).size == 4
        with pytest.raises(ConfigurationError):
            grid.k_nearest(0.0, 0.0, 0)


class TestTopologyBuilders:
    @pytest.mark.parametrize("positions,radius", LAYOUTS)
    def test_grid_and_brute_builders_agree(self, positions, radius):
        grid = Topology.from_positions(positions, transmission_range=radius)
        brute = Topology.from_positions(
            positions, transmission_range=radius, builder="brute"
        )
        assert grid.builder == "grid" and brute.builder == "brute"
        assert grid.edge_count == brute.edge_count
        for node_id in grid.node_ids:
            assert grid.neighbors_sorted(node_id) == brute.neighbors_sorted(
                node_id
            )

    def test_unknown_builder_rejected(self):
        from repro.core.errors import TopologyError

        with pytest.raises(TopologyError):
            Topology.from_positions(
                {0: (0.0, 0.0)}, transmission_range=1.0, builder="kdtree"
            )

    def test_csr_queries_match_networkx(self):
        positions = random_layout(80, terrain_size=40.0, seed=5)
        topology = Topology.from_positions(
            positions, transmission_range=DEFAULT_TRANSMISSION_RANGE
        )
        graph = topology.graph()
        import networkx as nx

        assert set(graph.nodes) == set(topology.node_ids)
        for node_id in topology.node_ids:
            assert set(graph.neighbors(node_id)) == topology.neighbors(node_id)
        source = topology.node_ids[0]
        assert topology.hop_distances_from(source) == dict(
            nx.single_source_shortest_path_length(graph, source)
        )
        if topology.is_connected():
            assert topology.diameter() == nx.diameter(graph)

    def test_nodes_within_hops_is_a_depth_cutoff(self):
        positions = intel_lab_layout()
        topology = Topology.from_positions(
            positions, transmission_range=DEFAULT_TRANSMISSION_RANGE
        )
        source = 0
        distances = topology.hop_distances_from(source)
        for hops in (0, 1, 2, 5):
            expected = {n for n, d in distances.items() if d <= hops}
            assert topology.nodes_within_hops(source, hops) == expected

    def test_node_ids_and_adjacency_are_cached(self):
        topology = Topology.from_positions(
            intel_lab_layout(), transmission_range=DEFAULT_TRANSMISSION_RANGE
        )
        assert topology.node_ids is topology.node_ids
        assert topology.adjacency() is topology.adjacency()
        # Cached ids are plain python ints (safe as JSON/dict keys).
        assert all(type(n) is int for n in topology.node_ids)
        assert all(
            type(n) is int
            for n in topology.neighbors_sorted(topology.node_ids[0])
        )

    def test_spatial_index_available_from_both_builders(self):
        positions = grid_layout(4, 4, spacing=3.0)
        for builder in ("grid", "brute"):
            topology = Topology.from_positions(
                positions, transmission_range=5.0, builder=builder
            )
            index = topology.spatial_index()
            hits = index.query_radius(0.0, 0.0, 3.5)
            # Point indices are ranks in node_ids: (0,0), (3,0) and (0,3).
            assert hits.tolist() == [0, 1, 4]


class TestRandomLayoutScaling:
    def test_grid_bucketed_rejection_matches_historical_draws(self):
        # The bucketed spacing check must preserve the historical RNG draw
        # sequence: same seed, same accepted positions.
        layout = random_layout(25, terrain_size=30.0, seed=42, min_spacing=3.0)
        assert len(layout) == 25
        points = list(layout.values())
        for i, (xi, yi) in enumerate(points):
            for xj, yj in points[i + 1 :]:
                assert math.hypot(xi - xj, yi - yj) >= 3.0
        again = random_layout(25, terrain_size=30.0, seed=42, min_spacing=3.0)
        assert layout == again

    def test_infeasible_density_reports_bound_and_progress(self):
        with pytest.raises(DatasetError) as excinfo:
            random_layout(
                500, terrain_size=10.0, seed=0, min_spacing=5.0,
                max_attempts=2000,
            )
        message = str(excinfo.value)
        assert "placed only" in message
        assert "at most ~" in message
        assert "reduce node_count or min_spacing" in message
