"""Unit tests for the data-point model."""

import math

import pytest

from repro.core.points import (
    DataPoint,
    distance,
    make_point,
    min_hop_merge,
    restrict_by_hop,
    sort_key,
)


class TestConstruction:
    def test_values_normalised_to_float_tuple(self):
        point = DataPoint(values=(1, 2), origin=0, epoch=0)
        assert point.values == (1.0, 2.0)
        assert all(isinstance(v, float) for v in point.values)

    def test_make_point_defaults_timestamp_to_epoch(self):
        point = make_point([1.0], origin=3, epoch=7)
        assert point.timestamp == 7.0

    def test_make_point_explicit_timestamp(self):
        point = make_point([1.0], origin=3, epoch=7, timestamp=2.5)
        assert point.timestamp == 2.5

    def test_dimension(self):
        assert make_point([1, 2, 3], 0, 0).dimension == 3

    def test_points_are_hashable_and_equal_by_value(self):
        a = make_point([1.0, 2.0], 0, 5)
        b = make_point([1.0, 2.0], 0, 5)
        assert a == b
        assert len({a, b}) == 1

    def test_hop_differentiates_instances(self):
        a = make_point([1.0], 0, 0)
        b = a.with_hop(2)
        assert a != b
        assert a.same_rest(b)
        assert a.rest == b.rest

    def test_with_hop_rejects_negative(self):
        with pytest.raises(ValueError):
            make_point([1.0], 0, 0).with_hop(-1)

    def test_incremented(self):
        assert make_point([1.0], 0, 0).incremented().hop == 1


class TestOrdering:
    def test_sort_key_orders_by_values_then_origin_then_epoch(self):
        a = make_point([1.0], 0, 0)
        b = make_point([2.0], 0, 0)
        c = make_point([1.0], 1, 0)
        d = make_point([1.0], 0, 1)
        assert a < b
        assert a < c
        assert a < d
        assert sorted([b, d, c, a])[0] == a

    def test_comparison_ignores_hop(self):
        a = make_point([1.0], 0, 0)
        b = a.with_hop(3)
        assert not a < b and not b < a
        assert sort_key(a) == sort_key(b)

    def test_comparison_with_other_types(self):
        assert make_point([1.0], 0, 0).__lt__(42) is NotImplemented


class TestDistance:
    def test_euclidean(self):
        a = make_point([0.0, 0.0], 0, 0)
        b = make_point([3.0, 4.0], 1, 0)
        assert distance(a, b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a = make_point([1.0, 7.0], 0, 0)
        b = make_point([-2.0, 3.5], 1, 0)
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_zero_distance_to_self(self):
        a = make_point([1.0, 7.0], 0, 0)
        assert distance(a, a) == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            distance(make_point([1.0], 0, 0), make_point([1.0, 2.0], 0, 0))


class TestHopHelpers:
    def test_min_hop_merge_keeps_smallest_hop_per_observation(self):
        base = make_point([1.0], 0, 0)
        other = make_point([2.0], 1, 0)
        merged = min_hop_merge([base.with_hop(3), base.with_hop(1), other.with_hop(2)])
        by_rest = {p.rest: p.hop for p in merged}
        assert by_rest[base.rest] == 1
        assert by_rest[other.rest] == 2
        assert len(merged) == 2

    def test_min_hop_merge_is_sorted_and_deterministic(self):
        points = [make_point([v], 0, i) for i, v in enumerate([5.0, 1.0, 3.0])]
        merged = min_hop_merge(reversed(points))
        assert [p.values[0] for p in merged] == [1.0, 3.0, 5.0]

    def test_restrict_by_hop(self):
        base = make_point([1.0], 0, 0)
        points = {base, base.with_hop(1), make_point([2.0], 1, 0).with_hop(3)}
        assert restrict_by_hop(points, 1) == {base, base.with_hop(1)}
        assert restrict_by_hop(points, 0) == {base}
