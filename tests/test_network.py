"""Tests for the network substrate: topology, energy model, packets, channel
and nodes."""

import pytest

from repro.core.errors import ConfigurationError, SimulationError, TopologyError
from repro.network import (
    BROADCAST_ADDRESS,
    CROSSBOW_MICA2,
    EnergyMeter,
    EnergyModel,
    EnergyReport,
    NodePlacement,
    Packet,
    PacketKind,
    SimNode,
    Topology,
    WirelessChannel,
)
from repro.network.stats import NodeEnergy
from repro.simulator import Simulator


def square_topology(side=2, spacing=5.0, rng=6.0):
    positions = {
        row * side + col: (col * spacing, row * spacing)
        for row in range(side)
        for col in range(side)
    }
    return Topology.from_positions(positions, rng)


class TestTopology:
    def test_neighbors_follow_the_unit_disk_rule(self):
        topo = square_topology()
        assert topo.neighbors(0) == {1, 2}  # diagonal (7.07m) out of range

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TopologyError):
            Topology([NodePlacement(0, 0, 0), NodePlacement(0, 1, 1)], 5.0)

    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyError):
            Topology([], 5.0)

    def test_nonpositive_range_rejected(self):
        with pytest.raises(TopologyError):
            Topology.from_positions({0: (0, 0)}, 0.0)

    def test_connectivity_detection(self):
        connected = square_topology()
        assert connected.is_connected()
        disconnected = Topology.from_positions({0: (0, 0), 1: (100, 100)}, 5.0)
        assert not disconnected.is_connected()
        with pytest.raises(TopologyError):
            disconnected.require_connected()

    def test_hop_distances(self):
        topo = square_topology()
        assert topo.hop_distance(0, 3) == 2
        assert topo.hop_distances_from(0) == {0: 0, 1: 1, 2: 1, 3: 2}
        assert topo.nodes_within_hops(0, 1) == {0, 1, 2}

    def test_shortest_path_tree_points_towards_the_sink(self):
        topo = square_topology()
        table = topo.shortest_path_tree(0)
        assert table[0] is None
        assert table[3] in {1, 2}
        assert table[1] == 0

    def test_distance_and_positions(self):
        topo = square_topology()
        assert topo.distance(0, 1) == pytest.approx(5.0)
        assert topo.position(3) == (5.0, 5.0)

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            square_topology().neighbors(99)

    def test_degree_statistics_and_diameter(self):
        topo = square_topology()
        low, mean, high = topo.degree_statistics()
        assert (low, high) == (2, 2)
        assert topo.diameter() == 2


class TestEnergyModel:
    def test_paper_constants(self):
        assert CROSSBOW_MICA2.tx_power_w == pytest.approx(0.0159)
        assert CROSSBOW_MICA2.rx_power_w == pytest.approx(0.021)
        assert CROSSBOW_MICA2.idle_power_w == pytest.approx(3e-6)

    def test_airtime_and_energy_scale_with_size(self):
        model = EnergyModel(bitrate_bps=38_400)
        assert model.airtime(48) == pytest.approx(0.01)
        assert model.tx_energy(96) == pytest.approx(2 * model.tx_energy(48))
        assert model.rx_energy(48) > model.tx_energy(48)  # RX draws more power

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(tx_power_w=0.0)
        with pytest.raises(ConfigurationError):
            CROSSBOW_MICA2.airtime(-1)
        with pytest.raises(ConfigurationError):
            CROSSBOW_MICA2.idle_energy(-1.0)

    def test_meter_accumulates(self):
        meter = EnergyMeter()
        meter.charge_tx(100)
        meter.charge_rx(100)
        meter.charge_idle(10.0)
        assert meter.total_joules == pytest.approx(
            meter.tx_joules + meter.rx_joules + meter.idle_joules
        )
        assert meter.packets_sent == 1 and meter.packets_received == 1
        assert meter.bytes_sent == 100


class TestEnergyReport:
    def _report(self):
        meters = {}
        for node_id, tx in enumerate([1.0, 2.0, 3.0]):
            meter = EnergyMeter()
            meter.tx_joules = tx
            meters[node_id] = meter
        return EnergyReport.from_meters(meters, rounds=10)

    def test_averages_and_extremes(self):
        report = self._report()
        assert report.average_per_node("tx_joules") == pytest.approx(2.0)
        assert report.average_per_node_per_round("tx_joules") == pytest.approx(0.2)
        assert report.minimum_node_total() == pytest.approx(1.0)
        assert report.maximum_node_total() == pytest.approx(3.0)
        assert report.hottest_node().node_id == 2

    def test_normalised_range(self):
        norm = self._report().normalised_range()
        assert norm["avg"] == pytest.approx(1.0)
        assert norm["min"] == pytest.approx(0.5)
        assert norm["max"] == pytest.approx(1.5)

    def test_rows_and_totals(self):
        report = self._report()
        assert len(report.as_rows()) == 3
        assert report.totals()["tx_joules"] == pytest.approx(6.0)


class TestChannelAndNodes:
    def _stack(self, loss=0.0):
        sim = Simulator()
        topo = square_topology()
        channel = WirelessChannel(sim, topo, loss_probability=loss)
        nodes = {i: SimNode(i, channel) for i in topo.node_ids}
        return sim, channel, nodes

    def test_broadcast_reaches_only_nodes_in_range(self):
        sim, channel, nodes = self._stack()
        received = []
        for node in nodes.values():
            node.add_handler(lambda n, p: received.append(n.node_id) or True)
        packet = Packet(PacketKind.APP_BROADCAST, source=0,
                        destination=BROADCAST_ADDRESS, size_bytes=50)
        nodes[0].broadcast(packet)
        sim.run()
        assert sorted(received) == [1, 2]

    def test_promiscuous_listening_charges_all_neighbors(self):
        sim, channel, nodes = self._stack()
        packet = Packet(PacketKind.APP_DATA, source=0, destination=1, size_bytes=40,
                        link_source=0, link_destination=1)
        nodes[0].send(packet)
        sim.run()
        assert nodes[0].energy.tx_joules > 0
        assert nodes[1].energy.rx_joules > 0
        assert nodes[2].energy.rx_joules > 0  # overhears but discards
        assert nodes[2].packets_discarded == 1

    def test_unicast_delivered_only_to_link_destination(self):
        sim, channel, nodes = self._stack()
        handled = []
        for node in nodes.values():
            node.add_handler(lambda n, p: handled.append(n.node_id) or True)
        packet = Packet(PacketKind.APP_DATA, source=0, destination=1, size_bytes=40,
                        link_source=0, link_destination=1)
        nodes[0].send(packet)
        sim.run()
        assert handled == [1]

    def test_loss_probability_drops_deliveries(self):
        sim, channel, nodes = self._stack(loss=0.999)
        handled = []
        nodes[1].add_handler(lambda n, p: handled.append(p) or True)
        for _ in range(10):
            nodes[0].broadcast(Packet(PacketKind.APP_BROADCAST, source=0,
                                      destination=BROADCAST_ADDRESS, size_bytes=30))
        sim.run()
        assert channel.stats.losses > 0
        assert len(handled) < 10

    def test_cannot_send_packet_with_foreign_link_source(self):
        _sim, _channel, nodes = self._stack()
        packet = Packet(PacketKind.APP_DATA, source=1, destination=0, size_bytes=10,
                        link_source=1, link_destination=0)
        with pytest.raises(SimulationError):
            nodes[0].send(packet)

    def test_node_must_exist_in_topology(self):
        sim = Simulator()
        topo = square_topology()
        channel = WirelessChannel(sim, topo)
        with pytest.raises(SimulationError):
            SimNode(99, channel)

    def test_invalid_loss_probability(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            WirelessChannel(sim, square_topology(), loss_probability=1.5)

    def test_packet_next_hop_copy_increments_hop_count(self):
        packet = Packet(PacketKind.APP_DATA, source=0, destination=3, size_bytes=10)
        relayed = packet.next_hop_copy(1, 3)
        assert relayed.hop_count == packet.hop_count + 1
        assert relayed.source == 0 and relayed.link_source == 1
