"""Unit and property-based tests for the ranking functions.

The property-based tests check exactly the two axioms the distributed
algorithm's correctness proof relies on (anti-monotonicity and smoothness),
plus the agreement between the vectorised and scalar scoring paths.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.points import make_point
from repro.core.ranking import (
    DEFICIT_UNIT,
    AverageKNNDistance,
    KthNearestNeighborDistance,
    NearestNeighborDistance,
    NeighborCountWithinRadius,
    ranking_from_name,
)

RANKINGS = [
    NearestNeighborDistance(),
    KthNearestNeighborDistance(k=2),
    AverageKNNDistance(k=3),
    NeighborCountWithinRadius(alpha=5.0),
]


def _points(values):
    return [make_point([float(v)], origin=i % 3, epoch=i) for i, v in enumerate(values)]


# ----------------------------------------------------------------------
# Deterministic unit tests
# ----------------------------------------------------------------------
class TestNearestNeighbor:
    def test_score_is_distance_to_closest_other_point(self):
        pts = _points([0.0, 1.0, 4.0])
        ranking = NearestNeighborDistance()
        assert ranking.score(pts[2], pts) == pytest.approx(3.0)
        assert ranking.score(pts[0], pts) == pytest.approx(1.0)

    def test_self_is_excluded_from_neighbors(self):
        pts = _points([2.0, 9.0])
        assert NearestNeighborDistance().score(pts[0], pts) == pytest.approx(7.0)

    def test_singleton_gets_deficit_score(self):
        pts = _points([2.0])
        assert NearestNeighborDistance().score(pts[0], pts) == DEFICIT_UNIT

    def test_support_is_the_nearest_neighbor(self):
        pts = _points([0.0, 1.0, 4.0])
        support = NearestNeighborDistance().support(pts[2], pts)
        assert support == frozenset({pts[1]})


class TestKthNearestNeighbor:
    def test_kth_distance(self):
        pts = _points([0.0, 1.0, 3.0, 10.0])
        ranking = KthNearestNeighborDistance(k=2)
        assert ranking.score(pts[0], pts) == pytest.approx(3.0)

    def test_deficit_grows_with_missing_neighbors(self):
        ranking = KthNearestNeighborDistance(k=3)
        pts = _points([0.0, 1.0])
        assert ranking.score(pts[0], pts) == pytest.approx(2 * DEFICIT_UNIT)

    def test_support_has_k_points(self):
        pts = _points([0.0, 1.0, 3.0, 10.0])
        ranking = KthNearestNeighborDistance(k=2)
        support = ranking.support(pts[0], pts)
        assert support == frozenset({pts[1], pts[2]})

    def test_support_smaller_when_not_enough_candidates(self):
        ranking = KthNearestNeighborDistance(k=5)
        pts = _points([0.0, 1.0, 2.0])
        assert ranking.support(pts[0], pts) == frozenset(pts[1:])

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            KthNearestNeighborDistance(k=0)


class TestAverageKNN:
    def test_average_of_k_nearest(self):
        pts = _points([0.0, 1.0, 3.0, 50.0])
        ranking = AverageKNNDistance(k=2)
        assert ranking.score(pts[0], pts) == pytest.approx((1.0 + 3.0) / 2)

    def test_k_one_equals_nn(self):
        pts = _points([0.0, 2.0, 7.0])
        assert AverageKNNDistance(k=1).score(pts[2], pts) == pytest.approx(
            NearestNeighborDistance().score(pts[2], pts)
        )

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            AverageKNNDistance(k=-1)


class TestNeighborCount:
    def test_score_inverse_of_count(self):
        pts = _points([0.0, 1.0, 2.0, 30.0])
        ranking = NeighborCountWithinRadius(alpha=2.5)
        assert ranking.score(pts[0], pts) == pytest.approx(1.0 / 3.0)
        assert ranking.score(pts[3], pts) == pytest.approx(1.0)

    def test_support_is_exactly_the_within_alpha_neighbors(self):
        pts = _points([0.0, 1.0, 2.0, 30.0])
        ranking = NeighborCountWithinRadius(alpha=1.5)
        assert ranking.support(pts[0], pts) == frozenset({pts[1]})

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            NeighborCountWithinRadius(alpha=0.0)


class TestFactory:
    def test_known_names(self):
        assert isinstance(ranking_from_name("nn"), NearestNeighborDistance)
        assert isinstance(ranking_from_name("knn", k=3), AverageKNNDistance)
        assert isinstance(ranking_from_name("kth-nn", k=3), KthNearestNeighborDistance)
        assert isinstance(ranking_from_name("count", alpha=2.0), NeighborCountWithinRadius)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            ranking_from_name("lof")

    def test_k_is_passed_through(self):
        assert ranking_from_name("knn", k=7).k == 7


# ----------------------------------------------------------------------
# Property-based tests: the two axioms plus bulk/scalar agreement
# ----------------------------------------------------------------------
point_lists = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


def _build(coords):
    return [make_point(list(xy), origin=0, epoch=i) for i, xy in enumerate(coords)]


@settings(max_examples=60, deadline=None)
@given(coords=point_lists, extra=point_lists, index=st.integers(min_value=0, max_value=100))
@pytest.mark.parametrize("ranking", RANKINGS, ids=lambda r: type(r).__name__)
def test_anti_monotonicity(ranking, coords, extra, index):
    """R(x, Q1) >= R(x, Q2) whenever Q1 is a subset of Q2."""
    q1 = _build(coords)
    q2 = q1 + [make_point(list(xy), origin=1, epoch=i) for i, xy in enumerate(extra)]
    x = q1[index % len(q1)]
    assert ranking.score(x, q1) >= ranking.score(x, q2) - 1e-9


@settings(max_examples=60, deadline=None)
@given(coords=point_lists, extra=point_lists, index=st.integers(min_value=0, max_value=100))
@pytest.mark.parametrize(
    "ranking",
    [NearestNeighborDistance(), AverageKNNDistance(k=3), NeighborCountWithinRadius(alpha=5.0)],
    ids=lambda r: type(r).__name__,
)
def test_smoothness(ranking, coords, extra, index):
    """If the score strictly drops when enlarging Q1 to Q2, then some single
    point of Q2 \\ Q1 already strictly drops it."""
    q1 = _build(coords)
    additions = [make_point(list(xy), origin=1, epoch=i) for i, xy in enumerate(extra)]
    q2 = q1 + additions
    x = q1[index % len(q1)]
    before = ranking.score(x, q1)
    after = ranking.score(x, q2)
    if before > after:
        assert any(ranking.score(x, q1 + [z]) < before for z in additions)


@settings(max_examples=40, deadline=None)
@given(coords=point_lists)
@pytest.mark.parametrize("ranking", RANKINGS, ids=lambda r: type(r).__name__)
def test_bulk_scores_match_scalar_scores(ranking, coords):
    points = _build(coords)
    bulk = ranking.bulk_scores(points)
    scalar = [ranking.score(p, points) for p in points]
    assert bulk == pytest.approx(scalar)


@settings(max_examples=40, deadline=None)
@given(coords=point_lists, index=st.integers(min_value=0, max_value=100))
@pytest.mark.parametrize("ranking", RANKINGS, ids=lambda r: type(r).__name__)
def test_support_preserves_score(ranking, coords, index):
    """R(x, P) == R(x, [P|x]) -- the defining property of a support set."""
    points = _build(coords)
    x = points[index % len(points)]
    support = ranking.support(x, points)
    assert set(support) <= set(points)
    assert ranking.score(x, support) == pytest.approx(ranking.score(x, points))
