"""Tests for AODV and static shortest-path routing over the simulated
channel."""

import pytest

from repro.core.errors import RoutingError
from repro.network import Packet, PacketKind, SimNode, Topology, WirelessChannel
from repro.routing import (
    AodvAgent,
    StaticRoutingAgent,
    install_shortest_path_routes,
)
from repro.simulator import Simulator


def line_topology(length=4, spacing=5.0, rng=6.0):
    return Topology.from_positions({i: (i * spacing, 0.0) for i in range(length)}, rng)


def build_stack(topology, agent_factory):
    sim = Simulator()
    channel = WirelessChannel(sim, topology)
    nodes = {i: SimNode(i, channel) for i in topology.node_ids}
    agents = {i: agent_factory(nodes[i]) for i in topology.node_ids}
    received = {i: [] for i in topology.node_ids}

    def make_handler(node_id):
        def handler(node, packet):
            if packet.destination == node_id and packet.kind == PacketKind.APP_DATA:
                received[node_id].append(packet)
                return True
            return False

        return handler

    for node_id, node in nodes.items():
        node.add_handler(make_handler(node_id))
    return sim, channel, nodes, agents, received


class TestAodv:
    def test_multi_hop_delivery_end_to_end(self):
        topo = line_topology(4)
        sim, channel, nodes, agents, received = build_stack(topo, AodvAgent)
        packet = Packet(PacketKind.APP_DATA, source=0, destination=3,
                        size_bytes=80, payload="window")
        agents[0].send_data(packet)
        sim.run()
        assert len(received[3]) == 1
        assert received[3][0].payload == "window"
        assert received[3][0].hop_count >= 3

    def test_route_discovery_installs_bidirectional_routes(self):
        topo = line_topology(4)
        sim, channel, nodes, agents, received = build_stack(topo, AodvAgent)
        agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=3,
                                   size_bytes=10))
        sim.run()
        assert agents[0].has_route(3)
        assert agents[3].has_route(0)
        assert agents[1].route(3).next_hop == 2

    def test_subsequent_packets_reuse_routes(self):
        topo = line_topology(3)
        sim, channel, nodes, agents, received = build_stack(topo, AodvAgent)
        agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=2, size_bytes=10))
        sim.run()
        control_after_first = sum(a.control_packets_sent for a in agents.values())
        agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=2, size_bytes=10))
        sim.run()
        control_after_second = sum(a.control_packets_sent for a in agents.values())
        assert control_after_second == control_after_first
        assert len(received[2]) == 2

    def test_refuses_self_and_broadcast_destinations(self):
        topo = line_topology(2)
        _sim, _channel, _nodes, agents, _received = build_stack(topo, AodvAgent)
        with pytest.raises(RoutingError):
            agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=0, size_bytes=1))
        with pytest.raises(RoutingError):
            agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=-1, size_bytes=1))

    def test_duplicate_rreqs_are_suppressed(self):
        topo = line_topology(3)
        sim, channel, nodes, agents, received = build_stack(topo, AodvAgent)
        agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=2, size_bytes=10))
        sim.run()
        # Node 1 forwards the request exactly once despite hearing echoes.
        assert agents[1].control_packets_sent <= 2


class TestStaticRouting:
    def test_forwarding_along_installed_routes(self):
        topo = line_topology(4)
        sim, channel, nodes, agents, received = build_stack(topo, StaticRoutingAgent)
        install_shortest_path_routes(agents, topo, sink=3)
        agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=3, size_bytes=20))
        sim.run()
        assert len(received[3]) == 1

    def test_sink_can_reply_to_every_node(self):
        topo = line_topology(4)
        sim, channel, nodes, agents, received = build_stack(topo, StaticRoutingAgent)
        install_shortest_path_routes(agents, topo, sink=3)
        agents[3].send_data(Packet(PacketKind.APP_DATA, source=3, destination=0, size_bytes=20))
        sim.run()
        assert len(received[0]) == 1

    def test_missing_route_raises(self):
        topo = line_topology(2)
        _sim, _channel, _nodes, agents, _received = build_stack(topo, StaticRoutingAgent)
        with pytest.raises(RoutingError):
            agents[0].send_data(Packet(PacketKind.APP_DATA, source=0, destination=1, size_bytes=5))

    def test_route_to_self_rejected(self):
        topo = line_topology(2)
        _sim, _channel, _nodes, agents, _received = build_stack(topo, StaticRoutingAgent)
        with pytest.raises(RoutingError):
            agents[0].set_route(0, 1)
