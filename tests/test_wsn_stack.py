"""Tests for the WSN application layer, the scenario runner and the analysis
utilities: small end-to-end simulations of every algorithm."""

import pytest

from repro.analysis import (
    AccuracyReport,
    aggregate_energy,
    compare_estimates,
    format_series_table,
    format_table,
    jaccard,
    traffic_imbalance,
)
from repro.baselines import CentralizedAggregator
from repro.core import (
    Algorithm,
    ConfigurationError,
    DetectionConfig,
    NearestNeighborDistance,
    OutlierMessage,
    OutlierQuery,
    SlidingWindow,
    make_point,
)
from repro.datasets import build_intel_lab_dataset
from repro.network import Topology
from repro.wsn import ScenarioConfig, run_scenario


class TestDetectionConfig:
    def test_label_matches_paper_naming(self):
        assert DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="nn").label() == "Global-NN"
        assert DetectionConfig(algorithm=Algorithm.GLOBAL, ranking="knn").label() == "Global-KNN"
        assert DetectionConfig(algorithm=Algorithm.CENTRALIZED).label() == "Centralized"
        assert (
            DetectionConfig(algorithm=Algorithm.SEMI_GLOBAL, hop_diameter=2).label()
            == "Semi-global, epsilon=2"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(n_outliers=0)
        with pytest.raises(ConfigurationError):
            DetectionConfig(window_length=0)
        with pytest.raises(ConfigurationError):
            DetectionConfig(ranking="nonsense")
        with pytest.raises(ConfigurationError):
            DetectionConfig(algorithm="magic")
        with pytest.raises(ConfigurationError):
            DetectionConfig(semiglobal_variant="other")

    def test_factories_and_copies(self):
        config = DetectionConfig(ranking="knn", k=3, n_outliers=2)
        query = config.make_query()
        assert query.n == 2 and query.ranking.k == 3
        assert config.with_window(7).window_length == 7
        assert config.with_outliers(5).n_outliers == 5
        assert config.with_hop_diameter(3).hop_diameter == 3


class TestScenarioConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(node_count=1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(sink_id=99)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(loss_probability=1.0)

    def test_dataset_config_follows_scenario(self):
        scenario = ScenarioConfig(node_count=8, rounds=6, seed=5)
        dataset_config = scenario.dataset_config()
        assert dataset_config.node_count == 8
        assert dataset_config.epochs == 6
        assert dataset_config.field_seed == 5

    def test_is_hashable_for_caching(self):
        assert hash(ScenarioConfig()) == hash(ScenarioConfig())


class TestSlidingWindowAndMessages:
    def test_window_keeps_exactly_w_samples(self):
        window = SlidingWindow(3)
        for epoch in range(6):
            window.slide(epoch, [make_point([float(epoch)], 0, epoch)])
        assert sorted(p.epoch for p in window.points) == [3, 4, 5]

    def test_window_rejects_nonpositive_length(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0)

    def test_message_wire_size_counts_unique_points_once(self):
        shared = make_point([1.0], 0, 0)
        only_a = make_point([2.0], 0, 1)
        message = OutlierMessage(
            sender=0, payloads={1: frozenset({shared, only_a}), 2: frozenset({shared})}
        )
        assert message.unique_points() == {shared, only_a}
        assert message.total_point_entries() == 3
        assert message.recipients == (1, 2)
        assert message.payload_for(9) == frozenset()

    def test_empty_payloads_are_dropped(self):
        message = OutlierMessage(sender=0, payloads={1: frozenset()})
        assert message.is_empty()


class TestCentralizedAggregator:
    def test_union_and_outliers(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        aggregator = CentralizedAggregator(query)
        aggregator.update_window(0, [make_point([1.0], 0, 0), make_point([1.5], 0, 1)])
        aggregator.update_window(1, [make_point([50.0], 1, 0)])
        assert aggregator.total_points() == 3
        assert [p.values[0] for p in aggregator.compute_outliers()] == [50.0]

    def test_update_replaces_previous_window(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        aggregator = CentralizedAggregator(query)
        aggregator.update_window(0, [make_point([1.0], 0, 0)])
        aggregator.update_window(0, [make_point([2.0], 0, 1)])
        assert aggregator.window_of(0) == {make_point([2.0], 0, 1)}

    def test_forget(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        aggregator = CentralizedAggregator(query)
        aggregator.update_window(0, [make_point([1.0], 0, 0)])
        aggregator.forget(0)
        assert aggregator.reporting_nodes == []


class TestAnalysis:
    def test_jaccard(self):
        assert jaccard(set(), set()) == 1.0
        assert jaccard({1}, {1, 2}) == pytest.approx(0.5)

    def test_compare_estimates(self):
        a = make_point([1.0], 0, 0)
        b = make_point([2.0], 1, 0)
        report = compare_estimates({0: [a], 1: [a]}, {0: [a], 1: [b]})
        assert report.exact == {0: True, 1: False}
        assert report.exact_fraction == pytest.approx(0.5)
        assert report.incorrect_nodes == [1]

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["x", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_format_series_table_includes_every_series(self):
        text = format_series_table("w", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert "a" in text and "b" in text and "w" in text


@pytest.mark.slow
class TestEndToEndSimulations:
    """Small but complete simulations of every algorithm."""

    def _scenario(self, algorithm, ranking="nn", hop=1, loss=0.0):
        detection = DetectionConfig(
            algorithm=algorithm, ranking=ranking, n_outliers=2, k=2,
            window_length=4, hop_diameter=hop,
        )
        return ScenarioConfig(detection=detection, node_count=8, rounds=5,
                              loss_probability=loss, seed=2)

    def test_global_simulation_is_exact_and_consistent(self):
        result = run_scenario(self._scenario(Algorithm.GLOBAL))
        assert result.accuracy.exact_fraction == 1.0
        assert result.energy.node_count == 8
        assert result.channel.transmissions > 0
        assert result.wallclock_seconds > 0

    def test_centralized_simulation_reaches_every_node(self):
        result = run_scenario(self._scenario(Algorithm.CENTRALIZED))
        assert result.accuracy.exact_fraction == 1.0
        # The sink's neighborhood works hardest under centralisation.
        assert result.energy.maximum_node_total() > result.energy.average_per_node()

    def test_semi_global_simulation_is_accurate(self):
        result = run_scenario(self._scenario(Algorithm.SEMI_GLOBAL, hop=2))
        assert result.accuracy.exact_fraction >= 0.7
        assert result.accuracy.mean_similarity >= 0.8

    def test_distributed_uses_less_energy_than_centralized(self):
        distributed = run_scenario(self._scenario(Algorithm.GLOBAL))
        centralized = run_scenario(self._scenario(Algorithm.CENTRALIZED))
        assert (
            distributed.energy.average_per_node_per_round("tx_joules")
            < centralized.energy.average_per_node_per_round("tx_joules")
        )

    def test_packet_loss_degrades_gracefully(self):
        # Without retransmissions a lost packet can leave part of the chain
        # with a stale estimate; the run must still complete and keep partial
        # agreement with the reference (graceful degradation, not a crash).
        result = run_scenario(self._scenario(Algorithm.GLOBAL, loss=0.05))
        assert result.channel.losses > 0
        assert result.accuracy.mean_similarity >= 0.3
        assert result.accuracy.node_count == 8

    def test_traffic_imbalance_is_larger_for_centralized(self):
        central = run_scenario(self._scenario(Algorithm.CENTRALIZED))
        distributed = run_scenario(self._scenario(Algorithm.GLOBAL))
        dataset = build_intel_lab_dataset(self._scenario(Algorithm.GLOBAL).dataset_config())
        topo = Topology.from_positions(dataset.positions, 6.77)
        central_ratio = traffic_imbalance(central.energy, topo, 0)["max_over_avg"]
        distributed_ratio = traffic_imbalance(distributed.energy, topo, 0)["max_over_avg"]
        assert central_ratio > distributed_ratio

    def test_aggregate_energy_over_repetitions(self):
        first = run_scenario(self._scenario(Algorithm.GLOBAL))
        second = run_scenario(self._scenario(Algorithm.GLOBAL).with_seed(3))
        summary = aggregate_energy([first.energy, second.energy])
        assert summary.runs == 2
        assert summary.avg_total_per_round > 0
        assert summary.normalised_max >= 1.0 >= summary.normalised_min
