"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core import (
    AverageKNNDistance,
    GlobalOutlierDetector,
    NearestNeighborDistance,
    OutlierQuery,
    make_point,
)


@pytest.fixture
def nn_query() -> OutlierQuery:
    """Top-1 outlier under the nearest-neighbor distance."""
    return OutlierQuery(NearestNeighborDistance(), n=1)


@pytest.fixture
def knn_query() -> OutlierQuery:
    """Top-2 outliers under the average 2-NN distance."""
    return OutlierQuery(AverageKNNDistance(k=2), n=2)


def make_points(values, origin=0, start_epoch=0, extra=()):
    """Build 1-D (or higher-D via ``extra``) points from plain numbers."""
    return [
        make_point([float(v), *extra], origin=origin, epoch=start_epoch + i)
        for i, v in enumerate(values)
    ]


def random_dataset(rng: random.Random, sensors: int, per_sensor: int,
                   outlier_rate: float = 0.1) -> Dict[int, List]:
    """Random clustered data with occasional far-away outliers."""
    data = {}
    for sensor in range(sensors):
        points = []
        for epoch in range(per_sensor):
            if rng.random() < outlier_rate:
                value = rng.uniform(60.0, 100.0)
            else:
                value = rng.gauss(20.0, 1.0)
            points.append(
                make_point(
                    [value, rng.uniform(0, 50), rng.uniform(0, 50)],
                    origin=sensor,
                    epoch=epoch,
                )
            )
        data[sensor] = points
    return data


def random_connected_adjacency(rng: random.Random, sensors: int) -> Dict[int, List[int]]:
    """A random connected graph: a random tree plus a few extra edges."""
    adjacency = {i: set() for i in range(sensors)}
    order = list(range(sensors))
    rng.shuffle(order)
    for index in range(1, sensors):
        other = rng.choice(order[:index])
        adjacency[order[index]].add(other)
        adjacency[other].add(order[index])
    for _ in range(rng.randint(0, sensors)):
        a, b = rng.sample(range(sensors), 2)
        adjacency[a].add(b)
        adjacency[b].add(a)
    return {node: sorted(neighbors) for node, neighbors in adjacency.items()}
