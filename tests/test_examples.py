"""Smoke-run every narrative script in ``examples/`` on the tiny profile.

The examples are documentation that executes; this suite (and CI's
``docs`` job) keeps them from drifting away from the current API.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_are_discovered():
    assert {path.name for path in EXAMPLES} >= {
        "quickstart.py",
        "streaming_updates.py",
        "energy_comparison.py",
        "acoustic_cleansing.py",
    }


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env["REPRO_BENCH_PROFILE"] = "tiny"
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples narrate: stdout must not be empty"
