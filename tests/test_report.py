"""Tests for the report pipeline: schemas, reader, aggregate, site, trajectory.

The load-bearing guarantees:

* the report site is **byte-deterministic**: two scratch sweep families are
  simulated into a fixture store and rendered (markdown + HTML + data
  files), and every produced byte is pinned against committed goldens under
  ``tests/goldens/report/`` (regenerate deliberately with
  ``REPRO_UPDATE_GOLDENS=1 pytest tests/test_report.py``);
* rendering is **store-only**: a complete family renders without a single
  simulation, an incomplete one is skipped with its gap reported -- never
  silently recomputed;
* every committed ``BENCH_*.json`` artifact validates against the
  centralised schemas, and each schema rejects a characteristic
  malformation;
* aggregation obeys its order-statistics invariants (hypothesis property
  tests): bounded by min/max, ratio symmetry, permutation invariance;
* the perf-trajectory diff compares only like-for-like metric keys, trips
  its gates on injected regressions, and appending entries is idempotent
  per commit.
"""

from __future__ import annotations

import copy
import json
import os
import shutil
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments  # noqa: F401  (importing registers the sweep families)
from repro.core.config import DetectionConfig
from repro.core.errors import ExperimentError
from repro.experiments import TINY_PROFILE
from repro.experiments.common import FigureResult, run_many
from repro.orchestrator import (
    ResultStore,
    SweepFamily,
    clear_memory,
    register,
    run_scenarios,
    unregister,
)
from repro.orchestrator import executor as executor_module
from repro.report import (
    SchemaError,
    append_entry,
    baseline_metrics,
    build_site,
    diff_metrics,
    extract_metrics,
    family_status,
    gate_for,
    load_bench_artifacts,
    load_trajectory,
    new_entry,
    paired_ratio,
    percentile,
    read_family,
    robustness_rollup,
    summarize,
    summary_rollup,
    validate_bench,
    validate_bench_file,
)
from repro.report import schemas as schemas_module
from repro.wsn.scenario import ScenarioConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
GOLDEN_ROOT = Path(__file__).resolve().parent / "goldens" / "report"

#: All committed benchmark measurement artifacts (kind -> filename).
COMMITTED_KINDS = ("hotpath", "e2e", "setup", "shard", "recovery")


@pytest.fixture(autouse=True)
def fresh_memory():
    clear_memory()
    yield
    clear_memory()


# ----------------------------------------------------------------------
# Scratch sweep families (the golden fixture workload)
# ----------------------------------------------------------------------
def _alpha_build(profile):
    return [
        ScenarioConfig(
            detection=DetectionConfig(window_length=2),
            node_count=6,
            rounds=3,
            seed=seed,
        )
        for seed in (0, 1)
    ]


def _alpha_report(profile):
    results = run_many(_alpha_build(profile))
    x_values = [0.0, 1.0]
    return [
        FigureResult(
            figure="Scratch alpha: fraction of sensors with an exact estimate",
            x_label="seed",
            x_values=x_values,
            series={"exact": [r.accuracy.exact_fraction for r in results]},
            notes="golden fixture",
        ),
        FigureResult(
            figure="Scratch alpha: transmissions",
            x_label="seed",
            x_values=x_values,
            series={"tx": [float(r.channel.transmissions) for r in results]},
            notes="golden fixture",
        ),
    ]


def _beta_build(profile):
    return [
        ScenarioConfig(
            detection=DetectionConfig(window_length=2, ranking="knn"),
            node_count=6,
            rounds=3,
            seed=seed,
        )
        for seed in (0, 1)
    ]


def _beta_report(profile):
    scenarios = _beta_build(profile)
    results = run_many(scenarios)
    return [
        FigureResult(
            figure="Scratch beta: avg energy per node per round [J]",
            x_label="seed",
            x_values=[float(s.seed) for s in scenarios],
            series={
                "tx": [
                    r.energy.average_per_node_per_round("tx_joules")
                    for r in results
                ],
                "rx": [
                    r.energy.average_per_node_per_round("rx_joules")
                    for r in results
                ],
            },
            notes="golden fixture",
        )
    ]


@pytest.fixture
def scratch_families():
    families = [
        SweepFamily(
            name="scratch-alpha",
            description="Golden fixture family A (global NN, w=2)",
            build=_alpha_build,
            report=_alpha_report,
        ),
        SweepFamily(
            name="scratch-beta",
            description="Golden fixture family B (global KNN, w=2)",
            build=_beta_build,
            report=_beta_report,
        ),
    ]
    for family in families:
        register(family, replace=True)
    yield families
    for family in families:
        unregister(family.name)


@pytest.fixture
def fixture_store(tmp_path, scratch_families):
    store = ResultStore(tmp_path / "store")
    scenarios = [
        scenario
        for family in scratch_families
        for scenario in family.build(TINY_PROFILE)
    ]
    run_scenarios(scenarios, workers=1, store=store)
    clear_memory()  # the site build must resolve purely from disk
    return store


#: Static benchmark fixtures for the trajectory page: committed-artifact
#: payloads would churn the goldens every PR, these never change.
FIXTURE_HOTPATH = {
    "benchmark": "hotpath",
    "schema": 2,
    "windows": [
        {
            "window": 64,
            "indexed_ms": 0.5,
            "rebuild_ms": 5.0,
            "speedup": 10.0,
            "batched_ms": 0.1,
            "batched_speedup": 5.0,
            "batch_sweep": [
                {"batch_size": 4, "batched_ms": 0.2, "speedup": 2.5}
            ],
        },
        {
            "window": 256,
            "indexed_ms": 1.0,
            "rebuild_ms": 20.0,
            "speedup": 20.0,
            "batched_ms": 0.25,
            "batched_speedup": 4.0,
            "batch_sweep": [
                {"batch_size": 4, "batched_ms": 0.5, "speedup": 2.0}
            ],
        },
    ],
}

FIXTURE_TRAJECTORY = {
    "benchmark": "trajectory",
    "schema": 1,
    "entries": [
        {
            "sha": "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            "metrics": {
                "hotpath.indexed_ms.w256": 1.1,
                "hotpath.speedup.w256": 18.0,
            },
        },
        {
            "sha": "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
            "metrics": {
                "hotpath.indexed_ms.w256": 1.0,
                "hotpath.speedup.w256": 20.0,
            },
            "note": "indexed hot path sped up",
        },
    ],
}

GOLDEN_SHA = "0123456789abcdef0123456789abcdef01234567"


# ----------------------------------------------------------------------
# Golden-file site rendering
# ----------------------------------------------------------------------
class TestGoldenSite:
    def _build(self, fixture_store, scratch_families, out_dir):
        return build_site(
            fixture_store,
            TINY_PROFILE,
            scratch_families,
            out_dir,
            formats=("md", "html"),
            git_sha=GOLDEN_SHA,
            bench={"hotpath": copy.deepcopy(FIXTURE_HOTPATH)},
            trajectory=copy.deepcopy(FIXTURE_TRAJECTORY),
        )

    def test_site_matches_goldens_byte_for_byte(
        self, fixture_store, scratch_families, tmp_path
    ):
        site_dir = tmp_path / "site"
        build = self._build(fixture_store, scratch_families, site_dir)
        assert not build.skipped

        generated = {
            str(path.relative_to(site_dir)): path.read_bytes()
            for path in sorted(site_dir.rglob("*"))
            if path.is_file()
        }
        assert generated, "site build produced no files"

        if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
            shutil.rmtree(GOLDEN_ROOT, ignore_errors=True)
            for rel, data in generated.items():
                dest = GOLDEN_ROOT / rel
                dest.parent.mkdir(parents=True, exist_ok=True)
                dest.write_bytes(data)
            pytest.skip("goldens regenerated")

        golden = {
            str(path.relative_to(GOLDEN_ROOT)): path.read_bytes()
            for path in sorted(GOLDEN_ROOT.rglob("*"))
            if path.is_file()
        }
        assert sorted(generated) == sorted(golden)
        for rel in sorted(generated):
            assert generated[rel] == golden[rel], f"{rel} differs from golden"

    def test_rebuild_is_byte_identical(
        self, fixture_store, scratch_families, tmp_path
    ):
        """Two builds over the same store produce the same bytes -- no
        hidden timestamps, dict-order dependence or machine identifiers."""
        first_dir, second_dir = tmp_path / "one", tmp_path / "two"
        self._build(fixture_store, scratch_families, first_dir)
        clear_memory()
        self._build(fixture_store, scratch_families, second_dir)
        first = sorted(p for p in first_dir.rglob("*") if p.is_file())
        second = sorted(p for p in second_dir.rglob("*") if p.is_file())
        assert [p.relative_to(first_dir) for p in first] == [
            p.relative_to(second_dir) for p in second
        ]
        for left, right in zip(first, second):
            assert left.read_bytes() == right.read_bytes(), left.name

    def test_build_never_simulates(
        self, fixture_store, scratch_families, tmp_path, monkeypatch
    ):
        def forbidden(_scenario):
            raise AssertionError("report build must not simulate")

        monkeypatch.setattr(executor_module, "run_scenario_worker", forbidden)
        build = self._build(fixture_store, scratch_families, tmp_path / "s")
        assert not build.skipped

    def test_incomplete_family_is_skipped_not_simulated(
        self, tmp_path, scratch_families
    ):
        empty_store = ResultStore(tmp_path / "empty")
        build = build_site(
            empty_store,
            TINY_PROFILE,
            scratch_families,
            tmp_path / "site",
            git_sha=GOLDEN_SHA,
        )
        assert build.skipped == ["scratch-alpha", "scratch-beta"]
        assert build.data_files == []
        page = (tmp_path / "site" / "scratch-alpha.md").read_text()
        assert "0/2 scenario(s)" in page
        assert "not rendered from a partial store" in page

    def test_unknown_format_is_rejected(self, tmp_path, scratch_families):
        with pytest.raises(ExperimentError, match="unknown report format"):
            build_site(
                ResultStore(tmp_path / "s"),
                TINY_PROFILE,
                scratch_families,
                tmp_path / "site",
                formats=("pdf",),
            )


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class TestReader:
    def test_family_status_counts(self, fixture_store, scratch_families):
        alpha = scratch_families[0]
        status = family_status(alpha, TINY_PROFILE, fixture_store)
        assert (status.total, status.present, status.missing) == (2, 2, 0)
        assert status.complete and status.status == "complete"

    def test_partial_and_empty_status(self, tmp_path, scratch_families):
        alpha = scratch_families[0]
        store = ResultStore(tmp_path / "partial")
        status = family_status(alpha, TINY_PROFILE, store)
        assert status.status == "empty"
        run_scenarios(_alpha_build(TINY_PROFILE)[:1], store=store)
        status = family_status(alpha, TINY_PROFILE, store)
        assert status.status == "partial"
        assert status.missing == 1
        assert len(status.missing_labels) == 1
        assert "seed=1" in status.missing_labels[0]

    def test_read_family_aligns_results_with_grid(
        self, fixture_store, scratch_families
    ):
        result_set = read_family(
            scratch_families[0], TINY_PROFILE, fixture_store
        )
        assert result_set.complete
        assert len(result_set.present) == 2
        for scenario, result in result_set.present:
            assert result.scenario == scenario

    def test_read_family_leaves_missing_cells_none(
        self, tmp_path, scratch_families
    ):
        store = ResultStore(tmp_path / "p")
        run_scenarios(_alpha_build(TINY_PROFILE)[:1], store=store)
        result_set = read_family(scratch_families[0], TINY_PROFILE, store)
        assert not result_set.complete
        assert result_set.results[0] is not None
        assert result_set.results[1] is None

    def test_load_bench_artifacts_omits_missing_files(self, tmp_path):
        (tmp_path / "BENCH_hotpath.json").write_text(
            json.dumps(FIXTURE_HOTPATH)
        )
        artifacts = load_bench_artifacts(tmp_path)
        assert sorted(artifacts) == ["hotpath"]

    def test_load_bench_artifacts_raises_on_invalid(self, tmp_path):
        (tmp_path / "BENCH_hotpath.json").write_text("{}")
        with pytest.raises(SchemaError):
            load_bench_artifacts(tmp_path)


# ----------------------------------------------------------------------
# Schemas: every committed artifact validates; malformations are rejected
# ----------------------------------------------------------------------
class TestSchemas:
    @pytest.mark.parametrize("kind", COMMITTED_KINDS)
    def test_committed_artifact_validates(self, kind):
        path = RESULTS_DIR / f"BENCH_{kind}.json"
        assert path.is_file(), f"missing committed artifact {path}"
        payload = validate_bench_file(path)
        assert payload["benchmark"] == kind

    @staticmethod
    def _committed(kind):
        return json.loads((RESULTS_DIR / f"BENCH_{kind}.json").read_text())

    def test_hotpath_rejects_nonpositive_speedup(self):
        payload = self._committed("hotpath")
        payload["windows"][0]["speedup"] = 0
        with pytest.raises(SchemaError, match="speedup"):
            validate_bench(payload)

    def test_e2e_rejects_out_of_range_accuracy(self):
        payload = self._committed("e2e")
        payload["scenarios"][0]["accuracy_exact"] = 1.5
        with pytest.raises(SchemaError, match="accuracy_exact"):
            validate_bench(payload)

    def test_setup_rejects_missing_brute_cap(self):
        payload = self._committed("setup")
        del payload["brute_cap"]
        with pytest.raises(SchemaError, match="brute_cap"):
            validate_bench(payload)

    def test_shard_rejects_diverged_transcript(self):
        payload = self._committed("shard")
        payload["shards"][0]["identical"] = False
        with pytest.raises(SchemaError, match="identical"):
            validate_bench(payload)

    def test_recovery_rejects_unfired_chaos(self):
        payload = self._committed("recovery")
        payload["killed"]["chaos_fired"] = []
        with pytest.raises(SchemaError, match="chaos_fired"):
            validate_bench(payload)

    def test_trajectory_rejects_non_numeric_metric(self):
        payload = copy.deepcopy(FIXTURE_TRAJECTORY)
        payload["entries"][0]["metrics"]["hotpath.speedup.w256"] = "fast"
        with pytest.raises(SchemaError, match="finite number"):
            validate_bench(payload)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SchemaError, match="unknown benchmark kind"):
            validate_bench({"benchmark": "warp-drive", "schema": 1})

    def test_wrong_schema_version_is_rejected(self):
        payload = copy.deepcopy(FIXTURE_HOTPATH)
        payload["schema"] = 99
        with pytest.raises(SchemaError, match="'schema'"):
            validate_bench(payload)

    def test_cli_validates_and_reports(self, capsys, tmp_path):
        paths = [
            str(RESULTS_DIR / f"BENCH_{kind}.json") for kind in COMMITTED_KINDS
        ]
        assert schemas_module.main(paths) == 0
        out = capsys.readouterr().out
        for kind in COMMITTED_KINDS:
            assert f"{kind} schema" in out

        bad = tmp_path / "BENCH_hotpath.json"
        bad.write_text("{}")
        assert schemas_module.main([str(bad)]) == 1
        assert schemas_module.main([]) == 2


# ----------------------------------------------------------------------
# Aggregation invariants (hypothesis)
# ----------------------------------------------------------------------
finite_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_values, min_size=1, max_size=50)

#: One representative summary key per metric space the results report in:
#: energy, accuracy, traffic, event counts, availability.
SUMMARY_KEYS = (
    "avg_total_per_round",
    "accuracy_exact",
    "transmissions",
    "events",
    "mean_availability",
)


class _StubResult:
    """Quacks like a SimulationResult for summary_rollup."""

    def __init__(self, mapping):
        self._mapping = dict(mapping)

    def summary(self):
        return dict(self._mapping)


class TestAggregateProperties:
    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_statistics_are_bounded_by_min_and_max(self, values):
        stats = summarize(values)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
        for statistic in (stats.mean, stats.median, stats.p95):
            assert stats.minimum <= statistic <= stats.maximum

    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, values):
        assert summarize(values) == summarize(list(reversed(values)))
        assert summarize(values) == summarize(sorted(values))

    @given(
        baseline=st.floats(min_value=1e-6, max_value=1e9),
        variant=st.floats(min_value=1e-6, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_ratio_symmetry(self, baseline, variant):
        forward = paired_ratio(baseline, variant)
        backward = paired_ratio(variant, baseline)
        assert forward * backward == pytest.approx(1.0, rel=1e-9)

    @given(values=value_lists, q=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_percentile_within_range_and_monotone_endpoints(self, values, q):
        assert min(values) <= percentile(values, q) <= max(values)
        assert percentile(values, 0.0) == min(values)
        assert percentile(values, 100.0) == max(values)

    @given(
        summaries=st.lists(
            st.dictionaries(
                keys=st.sampled_from(SUMMARY_KEYS),
                values=finite_values,
                min_size=1,
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_summary_rollup_is_permutation_invariant(self, summaries):
        results = [_StubResult(mapping) for mapping in summaries]
        assert summary_rollup(results) == summary_rollup(
            list(reversed(results))
        )

    def test_empty_inputs_are_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])
        with pytest.raises(ExperimentError):
            percentile([], 50.0)
        with pytest.raises(ExperimentError):
            paired_ratio(0.0, 1.0)


class TestRobustnessRollup:
    def test_rollup_over_injected_runs(self):
        from repro.datasets.outlier_injection import InjectionConfig

        scenarios = [
            ScenarioConfig(
                detection=DetectionConfig(
                    ranking="knn", k=4, n_outliers=4, window_length=2
                ),
                node_count=6,
                rounds=3,
                injection=InjectionConfig(spike_probability=0.2),
                seed=seed,
            )
            for seed in (0, 1)
        ]
        results = run_many(scenarios)
        rollup = robustness_rollup(list(zip(scenarios, results)))
        assert sorted(rollup) == [
            "injected_precision",
            "injected_recall",
            "mean_availability",
        ]
        for stats in rollup.values():
            assert stats.count == 2
            assert 0.0 <= stats.minimum <= stats.maximum <= 1.0
            assert len(stats.as_row()) == 6

    def test_rollup_rejects_empty_input(self):
        with pytest.raises(ExperimentError):
            robustness_rollup([])


# ----------------------------------------------------------------------
# Trajectory: extraction, gates, diffs, the committed artifact
# ----------------------------------------------------------------------
class TestTrajectory:
    def test_extraction_keys_are_config_parameterised(self):
        metrics = extract_metrics({"hotpath": FIXTURE_HOTPATH})
        assert metrics["hotpath.speedup.w64"] == 10.0
        assert metrics["hotpath.speedup.w256"] == 20.0
        assert metrics["hotpath.batched_speedup.w256"] == 4.0

    def test_extraction_over_committed_artifacts(self):
        metrics = extract_metrics(load_bench_artifacts(RESULTS_DIR))
        assert "hotpath.speedup.w256" in metrics
        assert "setup.speedup.n4096" in metrics
        assert "shard.speedup.n4096.x4" in metrics
        assert "recovery.overhead_ratio.n256" in metrics
        assert any(key.startswith("e2e.wallclock_s.") for key in metrics)

    def test_gates_cover_ratios_but_not_raw_latencies(self):
        assert gate_for("hotpath.speedup.w256") is not None
        assert gate_for("recovery.overhead_ratio.n256") is not None
        assert gate_for("hotpath.indexed_ms.w256") is None
        assert gate_for("e2e.total_wallclock_s") is None

    def test_committed_trajectory_matches_committed_artifacts(self):
        """The newest committed trajectory entry is exactly the metrics of
        the committed BENCH_*.json artifacts -- regenerating it is a no-op."""
        payload = load_trajectory(RESULTS_DIR / "BENCH_trajectory.json")
        artifacts = load_bench_artifacts(RESULTS_DIR)
        artifacts.pop("trajectory", None)
        assert payload["entries"][-1]["metrics"] == extract_metrics(artifacts)

    def test_self_diff_is_clean(self):
        metrics = extract_metrics({"hotpath": FIXTURE_HOTPATH})
        report = diff_metrics(metrics, metrics)
        assert report.ok
        assert not report.only_base and not report.only_current
        assert "clean" in report.render()

    def test_injected_regression_trips_the_gate(self):
        base = extract_metrics({"hotpath": FIXTURE_HOTPATH})
        current = dict(base)
        current["hotpath.speedup.w256"] = base["hotpath.speedup.w256"] / 20.0
        report = diff_metrics(base, current)
        assert not report.ok
        assert [row.key for row in report.regressions] == [
            "hotpath.speedup.w256"
        ]
        assert "REGRESSION" in report.render()

    def test_lower_is_better_gate_direction(self):
        base = {"recovery.overhead_ratio.n256": 1.0}
        worse = {"recovery.overhead_ratio.n256": 2.5}
        better = {"recovery.overhead_ratio.n256": 0.5}
        assert not diff_metrics(base, worse).ok
        assert diff_metrics(base, better).ok

    def test_diff_compares_only_the_intersection(self):
        base = {"hotpath.speedup.w256": 20.0, "setup.speedup.n4096": 9.0}
        current = {"hotpath.speedup.w256": 19.0, "shard.speedup.n256.x4": 2.0}
        report = diff_metrics(base, current)
        assert [row.key for row in report.rows] == ["hotpath.speedup.w256"]
        assert report.only_base == ("setup.speedup.n4096",)
        assert report.only_current == ("shard.speedup.n256.x4",)

    def test_fully_disjoint_diff_is_an_error(self):
        with pytest.raises(SchemaError, match="no metrics in common"):
            diff_metrics({"a.b": 1.0}, {"c.d": 1.0})

    def test_append_entry_appends_and_replaces_idempotently(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        first = new_entry({"hotpath.speedup.w256": 10.0}, "sha-one")
        payload = append_entry(path, first)
        assert [e["sha"] for e in payload["entries"]] == ["sha-one"]

        second = new_entry({"hotpath.speedup.w256": 12.0}, "sha-two")
        payload = append_entry(path, second)
        assert [e["sha"] for e in payload["entries"]] == ["sha-one", "sha-two"]

        replaced = new_entry({"hotpath.speedup.w256": 13.0}, "sha-two")
        payload = append_entry(path, replaced)
        assert [e["sha"] for e in payload["entries"]] == ["sha-one", "sha-two"]
        assert payload["entries"][-1]["metrics"]["hotpath.speedup.w256"] == 13.0
        # What landed on disk revalidates.
        assert load_trajectory(path)["entries"] == payload["entries"]

    def test_new_entry_rejects_empty_inputs(self):
        with pytest.raises(SchemaError):
            new_entry({}, "sha")
        with pytest.raises(SchemaError):
            new_entry({"a.b": 1.0}, "")

    def test_baseline_metrics_from_file_and_directory(self, tmp_path):
        label, metrics = baseline_metrics(RESULTS_DIR / "BENCH_trajectory.json")
        assert metrics
        assert label  # the newest entry's sha

        (tmp_path / "BENCH_hotpath.json").write_text(
            json.dumps(FIXTURE_HOTPATH)
        )
        label, metrics = baseline_metrics(tmp_path)
        assert label == str(tmp_path)
        assert metrics["hotpath.speedup.w256"] == 20.0

    def test_baseline_metrics_errors(self, tmp_path):
        with pytest.raises(SchemaError):
            baseline_metrics(tmp_path / "missing.json")
        with pytest.raises(SchemaError, match="no BENCH"):
            baseline_metrics(tmp_path)


# ----------------------------------------------------------------------
# The report CLI
# ----------------------------------------------------------------------
class TestReportCli:
    @staticmethod
    def _bench_dir(tmp_path):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir(exist_ok=True)
        (bench_dir / "BENCH_hotpath.json").write_text(
            json.dumps(FIXTURE_HOTPATH)
        )
        return bench_dir

    def _report(self, fixture_store, tmp_path, *extra):
        from repro.cli import main

        return main(
            [
                "report",
                "--store", str(fixture_store.root),
                "--out", str(tmp_path / "site"),
                "--profile", "tiny",
                "--families", "scratch-alpha,scratch-beta",
                "--git-sha", GOLDEN_SHA,
                "--bench-dir", str(self._bench_dir(tmp_path)),
                *extra,
            ]
        )

    def test_report_renders_site(self, fixture_store, tmp_path, capsys):
        assert self._report(fixture_store, tmp_path) == 0
        out = capsys.readouterr().out
        assert "scratch-alpha" in out and "complete" in out
        site = tmp_path / "site"
        assert (site / "index.md").is_file()
        assert (site / "data" / "scratch-beta.txt").is_file()
        assert GOLDEN_SHA in (site / "index.md").read_text()

    def test_clean_diff_exits_zero(self, fixture_store, tmp_path, capsys):
        trajectory = tmp_path / "trajectory.json"
        append_entry(
            trajectory,
            new_entry(extract_metrics({"hotpath": FIXTURE_HOTPATH}), "base"),
        )
        code = self._report(
            fixture_store, tmp_path, "--diff", str(trajectory)
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_regression_diff_exits_nonzero(
        self, fixture_store, tmp_path, capsys
    ):
        regressed = copy.deepcopy(FIXTURE_HOTPATH)
        for row in regressed["windows"]:
            row["speedup"] = row["speedup"] * 100.0  # baseline far above us
        trajectory = tmp_path / "trajectory.json"
        append_entry(
            trajectory,
            new_entry(extract_metrics({"hotpath": regressed}), "base"),
        )
        code = self._report(
            fixture_store, tmp_path, "--diff", str(trajectory)
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_update_trajectory_writes_the_artifact(
        self, fixture_store, tmp_path, capsys
    ):
        trajectory = tmp_path / "trajectory.json"
        code = self._report(
            fixture_store, tmp_path, "--update-trajectory", str(trajectory)
        )
        assert code == 0
        payload = load_trajectory(trajectory)
        assert [e["sha"] for e in payload["entries"]] == [GOLDEN_SHA]

    def test_diff_without_store_runs_bench_only(
        self, tmp_path, monkeypatch, capsys
    ):
        """CI's perf-smoke job diffs fresh bench artifacts against the
        committed trajectory with no result store in sight."""
        from repro.cli import main

        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        trajectory = tmp_path / "trajectory.json"
        append_entry(
            trajectory,
            new_entry(extract_metrics({"hotpath": FIXTURE_HOTPATH}), "base"),
        )
        code = main(
            [
                "report",
                "--bench-dir", str(self._bench_dir(tmp_path)),
                "--git-sha", GOLDEN_SHA,
                "--diff", str(trajectory),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench-only" in out and "clean" in out

    def test_missing_store_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert main(["report", "--out", str(tmp_path / "site")]) == 2
        assert "result store is required" in capsys.readouterr().err

    def test_unknown_family_is_a_usage_error(
        self, fixture_store, tmp_path, capsys
    ):
        from repro.cli import main

        code = main(
            [
                "report",
                "--store", str(fixture_store.root),
                "--out", str(tmp_path / "site"),
                "--families", "no-such-family",
            ]
        )
        assert code == 2
