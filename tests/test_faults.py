"""Fault-and-churn subsystem tests.

Covers the determinism contract (default fault configuration is the
identity -- byte-identical to pre-subsystem golden transcripts), the
deterministic per-seed schedules, the runtime semantics (radio off, missed
samples, crash amnesia, event-(iv) repair), the Gilbert-Elliott burst
model, the dataset-layer sensor faults, the robustness metrics and the two
new sweep families.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.analysis.robustness import (
    availability_report,
    detection_latency,
    injected_point_scores,
    mean_availability,
)
from repro.core.config import Algorithm, DetectionConfig
from repro.core.errors import ConfigurationError
from repro.datasets import build_intel_lab_dataset
from repro.datasets.outlier_injection import (
    InjectionConfig,
    InjectionRecord,
    apply_node_faults,
)
from repro.network.channel import GilbertElliottParams
from repro.orchestrator import (
    clear_memory,
    get_family,
    run_scenarios,
    scenario_key,
)
from repro.orchestrator.store import ResultStore
from repro.simulator.events import EventPriority
from repro.wsn import (
    FaultConfig,
    FaultPlan,
    ScenarioConfig,
    SimulationResult,
    build_deployment,
    run_scenario,
)
from repro.experiments import TINY_PROFILE


def _scenario(algorithm=Algorithm.GLOBAL, faults=None, **overrides):
    extra = {"hop_diameter": 2} if algorithm == Algorithm.SEMI_GLOBAL else {}
    detection = DetectionConfig(
        algorithm=algorithm, ranking="nn", n_outliers=2, k=2, window_length=3, **extra
    )
    options = dict(node_count=6, rounds=4, loss_probability=0.05, seed=3)
    options.update(overrides)
    if faults is not None:
        options["faults"] = faults
    return ScenarioConfig(detection=detection, **options)


def _transcript_digest(result: SimulationResult) -> str:
    """Hash of everything a run *computed* (scenario encoding excluded, so
    the digest is comparable across config-schema changes)."""
    payload = result.to_json_dict()
    payload.pop("wallclock_seconds")
    payload.pop("scenario")
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# The identity contract: no faults => byte-identical to the pre-subsystem
# transcripts (digests recorded from the commit before faults existed).
# ----------------------------------------------------------------------
GOLDEN_TRANSCRIPTS = {
    Algorithm.GLOBAL: (
        "21e5009dcf1a7682567df7509cbaa91cecb0808dad76f93a63599370c3840f25"
    ),
    Algorithm.SEMI_GLOBAL: (
        "3524ac3474c2167580b01f12b8aaa2f3fceb66eb8d6679b8f185b9b66cfe2cd0"
    ),
    Algorithm.CENTRALIZED: (
        "c0ac7ce3a18d1457aee373eaf7871ec2894d7cc3f350d1e971b4ef21bbaa06cb"
    ),
}


class TestNoFaultByteIdentity:
    @pytest.mark.parametrize("algorithm", sorted(GOLDEN_TRANSCRIPTS))
    def test_default_faults_reproduce_pre_subsystem_goldens(self, algorithm):
        result = run_scenario(_scenario(algorithm))
        assert _transcript_digest(result) == GOLDEN_TRANSCRIPTS[algorithm]

    def test_default_fault_config_is_disabled(self):
        faults = FaultConfig()
        assert not faults.enabled
        assert not faults.churn_enabled
        assert not faults.burst_enabled
        assert not faults.sensor_enabled
        assert faults.burst_params() is None

    def test_no_fault_run_has_no_fault_stats_key(self):
        result = run_scenario(_scenario())
        assert result.fault_stats == {}
        assert "fault_stats" not in result.to_json_dict()
        assert "mean_availability" not in result.summary()


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestFaultConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_probability": -0.1},
            {"crash_probability": 1.5},
            {"recovery_probability": 2.0},
            {"duty_cycle": 0.0},
            {"duty_cycle": 1.2},
            {"duty_period_rounds": 0},
            {"min_downtime_rounds": 0},
            {"min_downtime_rounds": 5, "max_downtime_rounds": 2},
            {"burst_to_bad": 1.5},
            {"burst_to_good": 0.0},
            {"burst_loss_bad": -0.2},
            {"sensor_stuck_probability": 0.7, "sensor_drift_probability": 0.7},
        ],
    )
    def test_invalid_configurations_fail_eagerly(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(**kwargs)

    def test_scenario_json_round_trip_preserves_faults(self):
        faults = FaultConfig(
            crash_probability=0.3,
            recovery_probability=0.5,
            duty_cycle=0.8,
            burst_to_bad=0.02,
            sensor_stuck_probability=0.1,
        )
        scenario = _scenario(faults=faults)
        clone = ScenarioConfig.from_json_dict(
            json.loads(json.dumps(scenario.to_json_dict()))
        )
        assert clone == scenario
        assert clone.faults == faults
        assert scenario_key(clone) == scenario_key(scenario)

    def test_fault_fields_change_the_store_key(self):
        static = _scenario()
        churned = _scenario(faults=FaultConfig(crash_probability=0.3))
        assert scenario_key(static) != scenario_key(churned)


# ----------------------------------------------------------------------
# Deterministic schedules
# ----------------------------------------------------------------------
class TestFaultPlan:
    FAULTS = FaultConfig(
        crash_probability=0.5,
        recovery_probability=0.8,
        duty_cycle=0.75,
        duty_period_rounds=2,
    )

    def test_plan_is_a_pure_function_of_the_scenario(self):
        scenario = _scenario(faults=self.FAULTS, rounds=8)
        first = FaultPlan.from_scenario(scenario)
        second = FaultPlan.from_scenario(scenario)
        assert {n: s.intervals for n, s in first.schedules.items()} == {
            n: s.intervals for n, s in second.schedules.items()
        }

    def test_different_seeds_draw_different_schedules(self):
        plans = [
            FaultPlan.from_scenario(_scenario(faults=self.FAULTS, rounds=8, seed=s))
            for s in range(6)
        ]
        signatures = {
            tuple(sorted((n, s.intervals) for n, s in plan.schedules.items()))
            for plan in plans
        }
        assert len(signatures) > 1

    def test_sink_is_exempt(self):
        scenario = _scenario(faults=self.FAULTS, rounds=8)
        plan = FaultPlan.from_scenario(scenario)
        assert scenario.sink_id not in plan.schedules

    def test_availability_is_a_fraction(self):
        scenario = _scenario(faults=self.FAULTS, rounds=8)
        plan = FaultPlan.from_scenario(scenario)
        for node_id in range(scenario.node_count):
            assert 0.0 <= plan.availability(node_id) <= 1.0
        # Duty cycle 0.75 means every non-sink node sleeps: some downtime.
        assert plan.any_downtime

    def test_fault_priority_precedes_all_others(self):
        assert EventPriority.FAULT < EventPriority.HIGH
        assert EventPriority.FAULT < EventPriority.NORMAL


# ----------------------------------------------------------------------
# Runtime semantics
# ----------------------------------------------------------------------
class TestChurnRuntime:
    def test_duty_cycle_skips_samples_and_records_stats(self):
        faults = FaultConfig(duty_cycle=0.5, duty_period_rounds=2)
        result = run_scenario(_scenario(faults=faults, rounds=8))
        assert result.fault_stats
        skipped = sum(s["samples_skipped"] for s in result.fault_stats.values())
        taken = sum(s["samples_taken"] for s in result.fault_stats.values())
        assert skipped > 0
        assert taken + skipped == 6 * 8
        # The sink never sleeps.
        sink_stats = result.fault_stats[0]
        assert sink_stats["samples_skipped"] == 0
        assert sink_stats["availability"] == 1.0
        assert 0.0 < result.mean_availability < 1.0

    def test_down_node_does_not_transmit(self):
        scenario = _scenario(faults=FaultConfig(duty_cycle=0.5), rounds=6)
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        deployment = build_deployment(scenario, dataset)
        node = deployment.nodes[1]
        node.power_down()
        before = deployment.channel.stats.transmissions
        app = deployment.apps[1]
        app.sample(dataset.points_at(0)[1])
        deployment.simulator.run()
        assert deployment.channel.stats.transmissions == before
        assert node.transmissions_suppressed > 0

    def test_crash_reset_clears_detector_state(self):
        scenario = _scenario(rounds=6)
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        deployment = build_deployment(scenario, dataset)
        app = deployment.apps[1]
        app.sample(dataset.points_at(0)[1])
        deployment.simulator.run()
        assert app.detector.holdings
        app.crash_reset()
        assert not app.detector.holdings
        assert len(app.window) == 0
        assert app.detector.neighbors == set()

    def test_crash_recovery_resets_even_inside_a_sleep_interval(self):
        # A crash that ends while a duty-cycle sleep still holds the radio
        # down must *still* lose RAM: the mote rebooted either way.
        from repro.wsn.faults import CRASH, SLEEP

        scenario = _scenario(faults=FaultConfig(duty_cycle=0.5), rounds=6)
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        deployment = build_deployment(scenario, dataset)
        runtime = deployment.fault_runtime
        app = deployment.apps[1]
        app.sample(dataset.points_at(0)[1])
        deployment.simulator.run()
        assert app.detector.holdings

        runtime.power_down(1)          # sleep interval begins
        runtime.power_down(1)          # crash begins while asleep (depth 2)
        runtime.power_up(1, CRASH)     # recovery fires at depth 2 -> 1
        assert not app.detector.holdings  # amnesia despite the radio being down
        assert not deployment.nodes[1].up
        runtime.power_up(1, SLEEP)     # sleep ends: radio back
        assert deployment.nodes[1].up

    def test_reference_excludes_samples_nobody_took(self):
        # Nodes sleep half the time: their missed samples must not appear
        # in the reference answer (they never entered the network).
        faults = FaultConfig(duty_cycle=0.5, duty_period_rounds=2)
        scenario = _scenario(faults=faults, rounds=8)
        result = run_scenario(scenario)
        skipped = sum(s["samples_skipped"] for s in result.fault_stats.values())
        assert skipped > 0  # the guard below is only meaningful with churn
        # Availability-annotated accuracy: with event-(iv) repair the
        # network still produces estimates; the reference is computable.
        assert result.references

    def test_fault_stats_json_round_trip(self):
        faults = FaultConfig(crash_probability=0.5, recovery_probability=1.0)
        result = run_scenario(_scenario(faults=faults, rounds=8))
        clone = SimulationResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert clone.fault_stats == result.fault_stats
        assert clone.canonical_json() == result.canonical_json()


# ----------------------------------------------------------------------
# Determinism of fault runs across execution tiers
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    FAULTS = FaultConfig(
        crash_probability=0.4,
        recovery_probability=1.0,
        duty_cycle=0.8,
        duty_period_rounds=2,
        burst_to_bad=0.05,
        sensor_stuck_probability=0.2,
    )

    def _grid(self):
        return [
            _scenario(faults=self.FAULTS, rounds=5, seed=seed) for seed in range(5)
        ]

    def test_parallel_equals_serial(self):
        clear_memory()
        serial = [r.canonical_json() for r in run_scenarios(self._grid(), workers=1)]
        clear_memory()
        parallel = [r.canonical_json() for r in run_scenarios(self._grid(), workers=4)]
        assert serial == parallel

    def test_store_round_trip_is_byte_identical(self, tmp_path):
        clear_memory()
        store = ResultStore(tmp_path)
        computed = [
            r.canonical_json()
            for r in run_scenarios(self._grid(), workers=2, store=store)
        ]
        clear_memory()
        warmed = [
            r.canonical_json()
            for r in run_scenarios(self._grid(), workers=2, store=store)
        ]
        assert computed == warmed


# ----------------------------------------------------------------------
# Gilbert-Elliott burst loss
# ----------------------------------------------------------------------
class TestBurstLoss:
    def test_stationary_loss_formula(self):
        params = GilbertElliottParams(
            p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.8
        )
        assert params.stationary_loss == pytest.approx(0.25 * 0.8)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottParams(p_good_to_bad=1.5, p_bad_to_good=0.3)
        with pytest.raises(ConfigurationError):
            GilbertElliottParams(p_good_to_bad=0.1, p_bad_to_good=0.0)

    def test_burst_model_loses_packets(self):
        faults = FaultConfig(burst_to_bad=0.2, burst_to_good=0.25, burst_loss_bad=0.9)
        assert faults.burst_enabled
        result = run_scenario(_scenario(faults=faults, loss_probability=0.0, rounds=6))
        assert result.channel.losses > 0

    def test_burst_replaces_iid_draws_but_not_for_disabled_config(self):
        # Burst disabled: identical draws as the legacy path => identical
        # transcript with or without the faults field present.
        base = run_scenario(_scenario())
        explicit = run_scenario(_scenario(faults=FaultConfig()))
        assert base.canonical_json() == explicit.canonical_json()


# ----------------------------------------------------------------------
# Dataset-layer sensor faults
# ----------------------------------------------------------------------
class TestSensorFaults:
    def test_zero_probability_is_an_exact_noop(self):
        config = _scenario().dataset_config()
        dataset = build_intel_lab_dataset(config)
        record = InjectionRecord()
        out, out_record = apply_node_faults(dataset.streams, record, 0.0, 0.0)
        assert out == dataset.streams
        assert out_record.count() == 0

    def test_faulty_sensor_tail_is_recorded_and_deterministic(self):
        scenario = _scenario(
            faults=FaultConfig(sensor_stuck_probability=0.5), rounds=8
        )
        first = build_intel_lab_dataset(scenario.dataset_config())
        second = build_intel_lab_dataset(scenario.dataset_config())
        assert first.injections.stuck == second.injections.stuck
        assert first.injections.stuck  # probability 0.5 over 6 nodes
        # Stuck points carry the stuck value in the reading channel.
        stuck_keys = first.injections.stuck
        stuck_points = [
            p
            for points in first.streams.values()
            for p in points
            if p.rest in stuck_keys
        ]
        assert stuck_points
        assert all(p.values[0] == 0.0 for p in stuck_points)

    def test_sensor_faults_change_only_the_faulted_tails(self):
        clean = build_intel_lab_dataset(_scenario(rounds=8).dataset_config())
        faulty_scenario = _scenario(
            faults=FaultConfig(sensor_drift_probability=0.5), rounds=8
        )
        faulty = build_intel_lab_dataset(faulty_scenario.dataset_config())
        drift_keys = faulty.injections.drifts
        assert drift_keys
        for node_id in clean.streams:
            for before, after in zip(clean.streams[node_id], faulty.streams[node_id]):
                if after.rest in drift_keys:
                    assert after.values[0] != before.values[0]
                else:
                    assert after == before


# ----------------------------------------------------------------------
# Robustness metrics
# ----------------------------------------------------------------------
class TestRobustnessMetrics:
    def test_availability_defaults_to_one_without_faults(self):
        result = run_scenario(_scenario())
        report = availability_report(result)
        assert set(report) == set(result.estimates)
        assert all(v == 1.0 for v in report.values())
        assert mean_availability(result) == 1.0

    def test_injected_scores_bounds(self):
        scenario = _scenario(
            faults=FaultConfig(sensor_stuck_probability=0.5),
            rounds=8,
            injection=InjectionConfig(spike_probability=0.05),
        )
        result = run_scenario(scenario)
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        scores = injected_point_scores(result, dataset)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert scores.relevant > 0

    def test_detection_latency_on_a_spiked_dataset(self):
        scenario = _scenario(
            rounds=8, injection=InjectionConfig(spike_probability=0.2)
        )
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        assert dataset.injections.count() > 0
        report = detection_latency(
            dataset, scenario.detection.make_query(), scenario.detection.window_length
        )
        assert report.detected + report.undetected > 0
        assert report.mean_rounds >= 0.0
        assert 0.0 <= report.detected_fraction <= 1.0

    def test_detection_latency_without_injections_is_empty(self):
        scenario = _scenario(
            rounds=4,
            injection=InjectionConfig(
                spike_probability=0.0, stuck_probability=0.0, drift_probability=0.0
            ),
        )
        dataset = build_intel_lab_dataset(scenario.dataset_config())
        report = detection_latency(dataset, scenario.detection.make_query(), 3)
        assert report.detected == 0
        assert report.undetected == 0
        assert report.detected_fraction == 1.0


# ----------------------------------------------------------------------
# Sweep families
# ----------------------------------------------------------------------
class TestFaultSweepFamilies:
    def test_families_are_registered_with_stable_tiny_counts(self):
        # CI's sweep-smoke greps for these counts; keep them stable or
        # update .github/workflows/ci.yml along with this test.
        for name in ("fault-churn", "burst-loss"):
            family = get_family(name)
            assert len(list(family.build(TINY_PROFILE))) == 6

    def test_fault_churn_report_renders_from_warm_cache(self):
        clear_memory()
        family = get_family("fault-churn")
        run_scenarios(family.build(TINY_PROFILE), workers=1)
        figures = family.report(TINY_PROFILE)
        assert len(figures) == 4
        titles = [figure.figure for figure in figures]
        assert any("availability" in title for title in titles)
        assert any("latency" in title for title in titles)
        # The static level (x = 0.0) must match the no-churn world:
        # availability 1.0 for every algorithm.
        availability = figures[0]
        assert availability.x_values[0] == 0.0
        for series in availability.series.values():
            assert series[0] == 1.0

    def test_burst_loss_report_matches_average_rates(self):
        clear_memory()
        family = get_family("burst-loss")
        run_scenarios(family.build(TINY_PROFILE), workers=1)
        figures = family.report(TINY_PROFILE)
        assert len(figures) == 3
        observed = figures[-1]
        # Both channel models should lose *something* at every probed rate
        # (they are matched in expectation, not exactly, so just sanity).
        for series in observed.series.values():
            assert all(0.0 <= value <= 1.0 for value in series)
