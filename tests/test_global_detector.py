"""Unit tests for the global distributed outlier detection protocol
(Algorithm 1), driven sans-IO."""

import pytest

from repro.core import (
    GlobalOutlierDetector,
    NearestNeighborDistance,
    OutlierQuery,
    make_point,
)
from repro.core.errors import ProtocolError


def _detector(sensor_id=0, neighbors=(1,), n=1):
    query = OutlierQuery(NearestNeighborDistance(), n=n)
    return GlobalOutlierDetector(sensor_id, query, neighbors=neighbors)


def _points(values, origin=0):
    return [make_point([float(v)], origin=origin, epoch=i) for i, v in enumerate(values)]


class TestLocalData:
    def test_add_local_points_updates_holdings_and_local(self):
        det = _detector()
        pts = _points([1.0, 2.0])
        det.add_local_points(pts)
        assert det.local_data == set(pts)
        assert det.holdings == set(pts)

    def test_adding_data_with_neighbors_produces_a_message(self):
        det = _detector()
        message = det.add_local_points(_points([1.0, 2.0, 50.0]))
        assert message is not None
        assert message.sender == 0
        assert 1 in message.recipients

    def test_adding_no_new_points_is_not_an_event(self):
        det = _detector()
        pts = _points([1.0, 2.0])
        det.add_local_points(pts)
        assert det.add_local_points(pts) is None

    def test_local_points_must_have_hop_zero(self):
        det = _detector()
        with pytest.raises(ProtocolError):
            det.add_local_points([make_point([1.0], 0, 0).with_hop(1)])

    def test_no_neighbors_means_no_message(self):
        det = _detector(neighbors=())
        assert det.add_local_points(_points([1.0, 9.0])) is None

    def test_estimate_over_own_data(self):
        det = _detector(n=1)
        det.add_local_points(_points([1.0, 1.5, 30.0]))
        assert [p.values[0] for p in det.estimate()] == [30.0]


class TestMessaging:
    def test_bookkeeping_tracks_sent_points(self):
        det = _detector()
        message = det.add_local_points(_points([1.0, 2.0, 50.0]))
        assert det.sent_to(1) == set(message.payload_for(1))

    def test_no_point_is_sent_twice_to_the_same_neighbor(self):
        det = _detector()
        first = det.add_local_points(_points([1.0, 2.0, 50.0]))
        second = det.add_local_points(_points([60.0], origin=0)) or None
        if second is not None:
            assert not (set(second.payload_for(1)) & set(first.payload_for(1)))

    def test_handle_message_adds_points_and_updates_received(self):
        det = _detector()
        remote = _points([100.0], origin=1)
        det.handle_message(1, remote)
        assert set(remote) <= det.holdings
        assert det.received_from(1) == set(remote)

    def test_handle_message_ignores_already_held_points(self):
        det = _detector()
        pts = _points([5.0])
        det.add_local_points(pts)
        det.handle_message(1, pts)
        assert det.received_from(1) == set()
        assert det.stats.points_ignored == 1

    def test_message_from_non_neighbor_rejected(self):
        det = _detector(neighbors=(1,))
        with pytest.raises(ProtocolError):
            det.handle_message(7, _points([1.0], origin=7))

    def test_receive_extracts_only_own_payload(self):
        det = _detector()
        other = GlobalOutlierDetector(1, det.query, neighbors=[0, 2])
        message = other.add_local_points(_points([1.0, 90.0], origin=1))
        reply = det.receive(message)
        assert set(message.payload_for(0)) <= det.holdings
        # Payload tagged for node 2 must not have been absorbed.
        assert all(p in det.holdings for p in message.payload_for(0))

    def test_receive_without_own_payload_is_not_an_event(self):
        det = _detector()
        from repro.core.messages import OutlierMessage

        message = OutlierMessage(sender=1, payloads={2: frozenset(_points([1.0], 1))})
        assert det.receive(message) is None
        assert det.stats.messages_received == 0


class TestEvictionAndMembership:
    def test_evict_removes_from_everywhere(self):
        det = _detector()
        pts = _points([1.0, 2.0, 50.0])
        det.add_local_points(pts)
        det.handle_message(1, _points([70.0], origin=1))
        det.evict_points(pts[:1])
        assert pts[0] not in det.holdings
        assert pts[0] not in det.sent_to(1)

    def test_evict_unknown_points_is_not_an_event(self):
        det = _detector()
        det.add_local_points(_points([1.0]))
        assert det.evict_points(_points([99.0], origin=5)) is None

    def test_evict_older_than_uses_timestamps(self):
        det = _detector()
        old = make_point([1.0], 0, 0, timestamp=0.0)
        new = make_point([2.0], 0, 1, timestamp=10.0)
        det.add_local_points([old, new])
        det.evict_older_than(5.0)
        assert det.holdings == {new}

    def test_update_local_data_combines_add_and_evict(self):
        det = _detector()
        old = _points([1.0, 2.0])
        det.add_local_points(old)
        events_before = det.stats.events_processed
        det.update_local_data(_points([3.0], origin=0), old)
        assert det.stats.events_processed == events_before + 1
        assert old[0] not in det.holdings

    def test_neighborhood_change_adds_and_removes_bookkeeping(self):
        det = _detector(neighbors=(1,))
        det.add_local_points(_points([1.0, 40.0]))
        sent_before = det.sent_to(1)
        assert sent_before
        det.neighborhood_changed({2})
        assert det.neighbors == {2}
        assert det.sent_to(1) == set()
        # Points already held remain held.
        assert det.holdings

    def test_unchanged_neighborhood_is_not_an_event(self):
        det = _detector(neighbors=(1,))
        assert det.neighborhood_changed({1}) is None

    def test_cannot_be_own_neighbor(self):
        det = _detector()
        with pytest.raises(ProtocolError):
            det.neighborhood_changed({0})


class TestStatistics:
    def test_counters_track_activity(self):
        det = _detector()
        det.add_local_points(_points([1.0, 60.0]))
        det.handle_message(1, _points([2.0], origin=1))
        stats = det.stats.as_dict()
        assert stats["local_points_added"] == 2
        assert stats["messages_received"] == 1
        assert stats["points_received"] == 1
        assert stats["events_processed"] >= 2
        assert stats["points_sent"] >= 1
