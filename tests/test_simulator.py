"""Tests for the discrete-event engine, events and random streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.simulator import Event, EventPriority, RandomStreams, Simulator


class TestEvent:
    def test_ordering_by_time_then_priority_then_sequence(self):
        early = Event(time=1.0)
        late = Event(time=2.0)
        high = Event(time=2.0, priority=EventPriority.HIGH)
        assert early < late
        assert high < late

    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(time=0.0, callback=fired.append, args=(1,))
        event.cancel()
        event.fire()
        assert fired == []

    def test_sort_key_is_the_total_order(self):
        a = Event(time=1.0, priority=EventPriority.HIGH)
        b = Event(time=1.0, priority=EventPriority.NORMAL)
        c = Event(time=1.0, priority=EventPriority.NORMAL)
        assert a.sort_key == (1.0, EventPriority.HIGH, 0, (), 0, a.sequence)
        # Comparison and sort_key must agree: a before b (priority), b
        # before c (sequence: b was constructed first).
        assert (a < b) == (a.sort_key < b.sort_key)
        assert (b < c) == (b.sort_key < c.sort_key)
        assert sorted([c, a, b]) == sorted([c, a, b], key=lambda e: e.sort_key)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_early_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert len(fired) == 2

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.schedule(2.0, fired.append, "y")
        event.cancel()
        sim.run()
        assert fired == ["y"]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append("first")
            sim.schedule(1.0, fired.append, "second")

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == ["first", "second"]

    def test_periodic_scheduling_respects_until(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_periodic_requires_positive_period(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_scheduled == 2
        assert sim.events_executed == 2


class TestTotalOrderReplay:
    """Property tests of the event total order: the execution the engine
    replays is exactly the schedule sorted by ``Event.sort_key``, chopping
    the run into arbitrary exclusive epochs (the sharded bus's barrier
    primitive) never changes it, and a lineage-tracking simulator fires in
    exactly the order a plain one does."""

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_replay_is_the_sort_key_order(self, data):
        entries = data.draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    st.sampled_from(
                        [EventPriority.HIGH, EventPriority.NORMAL,
                         EventPriority.FAULT, EventPriority.LOW]
                    ),
                ),
                min_size=1,
                max_size=30,
            )
        )
        sim = Simulator()
        fired = []
        events = [
            sim.schedule_at(
                time, fired.append, index, priority=priority
            )
            for index, (time, priority) in enumerate(entries)
        ]
        sim.run()
        expected = [
            event.args[0]
            for event in sorted(events, key=lambda e: e.sort_key)
        ]
        assert fired == expected

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_exclusive_epochs_replay_identically(self, data):
        entries = data.draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    st.sampled_from(
                        [EventPriority.HIGH, EventPriority.NORMAL,
                         EventPriority.LOW]
                    ),
                ),
                min_size=1,
                max_size=30,
            )
        )
        grants = sorted(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=11.0,
                              allow_nan=False, allow_infinity=False),
                    max_size=5,
                )
            )
        )

        def build(record):
            sim = Simulator()
            for index, (time, priority) in enumerate(entries):
                sim.schedule_at(time, record.append, index, priority=priority)
            return sim

        continuous = []
        build(continuous).run()

        chopped = []
        sim = Simulator()
        for index, (time, priority) in enumerate(entries):
            sim.schedule_at(time, chopped.append, index, priority=priority)
        for grant in grants:
            sim.run_exclusive(grant)
        sim.run()  # drain whatever the last grant left pending
        assert chopped == continuous

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_lineage_order_equals_sequence_order(self, data):
        # Random seed events, each of which may recursively schedule
        # children -- some at the *same* instant (a cascade, the case the
        # lineage generation field exists for), some later.  The lineage
        # simulator must fire everything in exactly the plain simulator's
        # (time, priority, sequence) order.
        entries = data.draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=4.0,
                              allow_nan=False, allow_infinity=False),
                    st.sampled_from(
                        [EventPriority.HIGH, EventPriority.NORMAL]
                    ),
                    st.integers(min_value=0, max_value=2),  # cascade depth
                    st.integers(min_value=1, max_value=2),  # fan-out
                ),
                min_size=1,
                max_size=12,
            )
        )

        def run(sim):
            fired = []
            counter = iter(range(10**6))

            def cascade(label, priority, depth, fanout):
                fired.append(label)
                if depth <= 0:
                    return
                for child in range(fanout):
                    same_instant = (depth + child) % 2 == 0
                    delay = 0.0 if same_instant else 0.25
                    sim.schedule(
                        delay, cascade,
                        (label, child), priority, depth - 1, fanout,
                    )

            for index, (time, priority, depth, fanout) in enumerate(entries):
                sim.schedule_at(
                    time, cascade, (next(counter),), priority, depth, fanout,
                    priority=priority,
                )
            sim.run()
            return fired

        assert run(Simulator(lineage=True)) == run(Simulator())

    def test_lineage_keys_are_unique_and_match_execution(self):
        sim = Simulator(lineage=True)
        fired = []

        def parent():
            fired.append("parent")
            sim.schedule(0.0, fired.append, "same-instant child")
            sim.schedule(1.0, fired.append, "later child")

        sim.schedule_at(1.0, parent)
        sim.schedule_at(1.0, fired.append, "sibling seed")
        sim.run()
        # The same-instant child is generation 1: it fires after every
        # generation-0 event at its instant, including the sibling seed
        # that was scheduled *before* it existed.
        assert fired == [
            "parent", "sibling seed", "same-instant child", "later child"
        ]

    def test_allocate_lineage_consumes_a_child_slot(self):
        sim = Simulator(lineage=True)
        allocated = []
        events = []

        def parent():
            allocated.append(sim.allocate_lineage(2.0, EventPriority.NORMAL))
            events.append(sim.schedule_at(2.0, lambda: None))

        sim.schedule_at(1.0, parent)
        sim.run(until=1.5)
        (lineage,), (event,) = allocated, events
        # The explicit allocation took child slot 0, the later schedule
        # call slot 1, both under the parent's key.
        assert lineage[2] == 0
        assert event.idx == 1
        assert event.pkey == lineage[1]
        with pytest.raises(SimulationError):
            Simulator().allocate_lineage(1.0, EventPriority.NORMAL)

    def test_run_exclusive_is_exclusive_and_keeps_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, fired.append, "a")
        sim.schedule_at(2.0, fired.append, "b")
        sim.run_exclusive(2.0)
        assert fired == ["a"]
        # The boundary event did not run and the clock sits at the last
        # executed event, never fast-forwarded to the grant.
        assert sim.now == 1.0
        assert sim.pending == 1
        sim.run_exclusive(2.0 + 1e-9)
        assert fired == ["a", "b"]


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("channel")
        b = RandomStreams(42).stream("channel")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        first = [streams.stream("a").random() for _ in range(3)]
        again = RandomStreams(42)
        again.stream("b").random()  # consuming another stream must not matter
        second = [again.stream("a").random() for _ in range(3)]
        assert first == second

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_creates_distinct_family(self):
        parent = RandomStreams(7)
        child = parent.spawn("rep-1")
        assert child.master_seed != parent.master_seed
