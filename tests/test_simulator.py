"""Tests for the discrete-event engine, events and random streams."""

import pytest

from repro.core.errors import SimulationError
from repro.simulator import Event, EventPriority, RandomStreams, Simulator


class TestEvent:
    def test_ordering_by_time_then_priority_then_sequence(self):
        early = Event(time=1.0)
        late = Event(time=2.0)
        high = Event(time=2.0, priority=EventPriority.HIGH)
        assert early < late
        assert high < late

    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(time=0.0, callback=fired.append, args=(1,))
        event.cancel()
        event.fire()
        assert fired == []


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_stops_early_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert len(fired) == 2

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.schedule(2.0, fired.append, "y")
        event.cancel()
        sim.run()
        assert fired == ["y"]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append("first")
            sim.schedule(1.0, fired.append, "second")

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == ["first", "second"]

    def test_periodic_scheduling_respects_until(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_periodic_requires_positive_period(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_scheduled == 2
        assert sim.events_executed == 2


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("channel")
        b = RandomStreams(42).stream("channel")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        first = [streams.stream("a").random() for _ in range(3)]
        again = RandomStreams(42)
        again.stream("b").random()  # consuming another stream must not matter
        second = [again.stream("a").random() for _ in range(3)]
        assert first == second

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_creates_distinct_family(self):
        parent = RandomStreams(7)
        child = parent.spawn("rep-1")
        assert child.master_seed != parent.master_seed
