"""Golden byte-equivalence of sharded execution (``repro.shard``).

The sharded message bus promises that ``run_scenario(..., shards=k)`` is
*byte-identical* (``SimulationResult.canonical_json``) to the
single-process run -- not statistically close, identical.  These tests pin
that promise on the paper's 53-node deployment across every algorithm,
every registered metric space, fault churn on and off, and shard counts
1/2/4, plus the partitioner's structural invariants and the up-front
rejection of the two scenario knobs sharding cannot replay (shared-stream
channel loss).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core.config import Algorithm, DetectionConfig
from repro.core.errors import ConfigurationError
from repro.experiments.sweeps import METRIC_VARIANTS
from repro.network.topology import Topology
from repro.shard import PARTITION_MODES, partition_topology
from repro.wsn.faults import FaultConfig
from repro.wsn.runner import run_scenario
from repro.wsn.scenario import ScenarioConfig

SHARD_COUNTS = (1, 2, 4)

#: Crash/recovery churn plus duty-cycle sleep: every fault-runtime code
#: path the mirror events must replicate (down nodes, timed recoveries,
#: periodic sleep), with recovery_probability=1.0 so the tiny grid still
#: converges to something worth comparing.
CHURN = FaultConfig(
    crash_probability=0.25,
    recovery_probability=1.0,
    min_downtime_rounds=1,
    max_downtime_rounds=2,
    duty_cycle=0.9,
    duty_period_rounds=2,
)

_ALGORITHMS = {
    "global": DetectionConfig(
        algorithm=Algorithm.GLOBAL, ranking="nn", n_outliers=4, k=4,
        window_length=3,
    ),
    "semi-global": DetectionConfig(
        algorithm=Algorithm.SEMI_GLOBAL, ranking="knn", n_outliers=4, k=4,
        window_length=3, hop_diameter=2,
    ),
    "centralized": DetectionConfig(
        algorithm=Algorithm.CENTRALIZED, ranking="nn", n_outliers=4, k=4,
        window_length=3,
    ),
}

#: Single-process transcripts, computed once per scenario and shared by
#: every shard count (the expensive half of each comparison).
_BASELINES: Dict[ScenarioConfig, str] = {}


def golden(scenario: ScenarioConfig) -> str:
    if scenario not in _BASELINES:
        _BASELINES[scenario] = run_scenario(scenario).canonical_json()
    return _BASELINES[scenario]


def algorithm_scenario(name: str, faults: bool) -> ScenarioConfig:
    return ScenarioConfig(
        detection=_ALGORITHMS[name],
        rounds=3,
        faults=CHURN if faults else FaultConfig(),
        seed=0,
    )


class TestGoldenEquivalence:
    """53-node deployment, every algorithm, faults on/off, shards 1/2/4."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("faults", [False, True], ids=["static", "churn"])
    @pytest.mark.parametrize("algorithm", sorted(_ALGORITHMS))
    def test_sharded_transcript_is_byte_identical(
        self, algorithm, faults, shards
    ):
        scenario = algorithm_scenario(algorithm, faults)
        sharded = run_scenario(scenario, shards=shards)
        assert sharded.canonical_json() == golden(scenario)

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_placement_mode_does_not_change_the_transcript(self, mode):
        scenario = algorithm_scenario("semi-global", True)
        sharded = run_scenario(scenario, shards=3, shard_mode=mode)
        assert sharded.canonical_json() == golden(scenario)


class TestMetricEquivalence:
    """Every registered metric space (4-d points) stays byte-identical."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize(
        "metric,metric_params",
        [(metric, params) for _label, metric, params in METRIC_VARIANTS],
        ids=[label for label, _, _ in METRIC_VARIANTS],
    )
    def test_sharded_transcript_is_byte_identical(
        self, metric, metric_params, shards
    ):
        scenario = ScenarioConfig(
            detection=DetectionConfig(
                algorithm=Algorithm.SEMI_GLOBAL, ranking="nn", n_outliers=4,
                k=4, window_length=2, hop_diameter=2, metric=metric,
                metric_params=metric_params,
            ),
            rounds=2,
            extra_channels=1,
            seed=0,
        )
        sharded = run_scenario(scenario, shards=shards)
        assert sharded.canonical_json() == golden(scenario)


class TestRejectedConfigurations:
    """Scenario knobs whose shared random streams no per-shard execution
    can replay are rejected up front, not silently diverged from."""

    def test_iid_loss_is_rejected(self):
        scenario = ScenarioConfig(
            detection=_ALGORITHMS["global"], rounds=2, loss_probability=0.1,
        )
        with pytest.raises(ConfigurationError, match="loss"):
            run_scenario(scenario, shards=2)

    def test_burst_loss_is_rejected(self):
        scenario = ScenarioConfig(
            detection=_ALGORITHMS["global"],
            rounds=2,
            faults=FaultConfig(
                burst_to_bad=0.05, burst_to_good=0.25, burst_loss_bad=0.8
            ),
        )
        with pytest.raises(ConfigurationError, match="burst"):
            run_scenario(scenario, shards=2)

    def test_invalid_shard_count_is_rejected(self):
        scenario = ScenarioConfig(detection=_ALGORITHMS["global"], rounds=2)
        with pytest.raises(ConfigurationError, match="shards"):
            run_scenario(scenario, shards=0)


# ----------------------------------------------------------------------
# Partitioner invariants
# ----------------------------------------------------------------------
def line_topology(n: int) -> Topology:
    return Topology.from_positions(
        {i: (float(i), 0.0) for i in range(n)}, transmission_range=1.5
    )


class TestPartitioner:
    def test_members_are_a_disjoint_cover(self):
        topology = line_topology(10)
        for mode in PARTITION_MODES:
            plan = partition_topology(topology, 0, 3, mode=mode)
            everyone = [n for members in plan.members for n in members]
            assert sorted(everyone) == list(range(10))
            assert len(everyone) == len(set(everyone))

    def test_hop_interleaved_balances_shard_sizes(self):
        plan = partition_topology(line_topology(10), 0, 3)
        sizes = sorted(len(members) for members in plan.members)
        assert max(sizes) - min(sizes) <= 1

    def test_band_mode_cuts_contiguous_hop_bands(self):
        # On a line rooted at node 0, hop distance equals the node id, so
        # band partitions must be contiguous id ranges.
        plan = partition_topology(line_topology(9), 0, 3, mode="band")
        assert plan.members == ((0, 1, 2), (3, 4, 5), (6, 7, 8))

    def test_boundaries_are_the_remote_neighbors(self):
        plan = partition_topology(line_topology(9), 0, 3, mode="band")
        # Shard 1 owns 3..5; its remote neighbors are 2 (from shard 0) and
        # 6 (from shard 2).
        assert plan.boundaries[1] == frozenset({2, 6})

    def test_owner_map_inverts_members(self):
        plan = partition_topology(line_topology(10), 0, 4)
        owner = plan.owner_map()
        for shard, members in enumerate(plan.members):
            for node in members:
                assert owner[node] == shard

    def test_invalid_arguments_are_rejected(self):
        topology = line_topology(4)
        with pytest.raises(ConfigurationError):
            partition_topology(topology, 0, 0)
        with pytest.raises(ConfigurationError):
            partition_topology(topology, 0, 5)
        with pytest.raises(ConfigurationError):
            partition_topology(topology, 0, 2, mode="random")
