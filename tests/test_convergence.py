"""Convergence properties of the distributed protocols over in-memory
networks: Theorems 1 and 2 for the global algorithm (agreement + exactness on
arbitrary connected topologies and event orderings), termination and
empirical accuracy for the semi-global heuristic, and behaviour under
dynamic data.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import random_connected_adjacency, random_dataset

from repro.core import (
    AverageKNNDistance,
    GlobalOutlierDetector,
    InMemoryNetwork,
    NearestNeighborDistance,
    OutlierQuery,
    SemiGlobalOutlierDetector,
    global_reference,
    make_point,
    semi_global_reference,
)


def _run_global(query, adjacency, datasets, seed=None):
    detectors = {i: GlobalOutlierDetector(i, query) for i in adjacency}
    network = InMemoryNetwork(detectors, adjacency, seed=seed)
    network.inject_local_data(datasets)
    network.run_to_quiescence()
    return detectors, network


class TestGlobalConvergence:
    def test_section_51_example_converges_to_half(self):
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        a, b = 20, 10
        d_i = [make_point([v], 0, i) for i, v in enumerate([0.5, 3, 6] + list(range(10, a + 1)))]
        d_j = [make_point([v], 1, i) for i, v in enumerate([4, 5, 7, 8, 9] + list(range(a + 1, a + b + 1)))]
        detectors, network = _run_global(query, {0: [1], 1: [0]}, {0: d_i, 1: d_j})
        for det in detectors.values():
            assert [p.values[0] for p in det.estimate()] == [0.5]
        # Communication stays tiny compared to centralising min(|D_i|, |D_j|).
        assert network.log.point_transmissions < min(len(d_i), len(d_j))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_theorems_1_and_2_on_random_topologies(self, data):
        """All sensors agree and the agreed answer is the exact O_n(D)."""
        rng = random.Random(data.draw(st.integers(min_value=0, max_value=10_000)))
        sensors = data.draw(st.integers(min_value=2, max_value=7))
        n = data.draw(st.integers(min_value=1, max_value=3))
        use_knn = data.draw(st.booleans())
        ranking = AverageKNNDistance(k=2) if use_knn else NearestNeighborDistance()
        query = OutlierQuery(ranking, n=n)
        adjacency = random_connected_adjacency(rng, sensors)
        datasets = random_dataset(rng, sensors, per_sensor=rng.randint(2, 6))
        delivery_seed = data.draw(st.integers(min_value=0, max_value=10_000))

        detectors, network = _run_global(query, adjacency, datasets, seed=delivery_seed)

        reference = {p.rest for p in global_reference(query, datasets)}
        assert network.estimates_agree()
        for det in detectors.values():
            assert {p.rest for p in det.estimate()} == reference

    def test_dynamic_updates_reconverge(self):
        rng = random.Random(3)
        query = OutlierQuery(NearestNeighborDistance(), n=2)
        adjacency = {0: [1], 1: [2], 2: [3], 3: []}
        datasets = random_dataset(rng, 4, per_sensor=4)
        detectors, network = _run_global(query, adjacency, datasets)

        # New data arrives at sensor 2, including an extreme value.
        extra = [make_point([500.0, 1.0, 1.0], origin=2, epoch=99)]
        network.inject_local_data({2: extra})
        network.run_to_quiescence()

        merged = {k: list(v) for k, v in datasets.items()}
        merged[2] = merged[2] + extra
        reference = {p.rest for p in global_reference(query, merged)}
        for det in detectors.values():
            assert {p.rest for p in det.estimate()} == reference

    def test_eviction_reconverges(self):
        rng = random.Random(9)
        query = OutlierQuery(NearestNeighborDistance(), n=1)
        adjacency = {0: [1], 1: [2], 2: []}
        datasets = random_dataset(rng, 3, per_sensor=4, outlier_rate=0.0)
        spike = make_point([400.0, 0.0, 0.0], origin=0, epoch=50)
        datasets[0] = datasets[0] + [spike]
        detectors, network = _run_global(query, adjacency, datasets)
        assert all(spike.rest in {p.rest for p in d.estimate()} for d in detectors.values())

        # The spike ages out everywhere: every sensor deletes it.
        network.evict({i: [spike] for i in adjacency})
        network.run_to_quiescence()
        remaining = {k: [p for p in v if p.rest != spike.rest] for k, v in datasets.items()}
        reference = {p.rest for p in global_reference(query, remaining)}
        for det in detectors.values():
            assert {p.rest for p in det.estimate()} == reference

    def test_communication_is_proportional_to_outcome_not_data(self):
        """Doubling the amount of perfectly redundant data does not double
        the communication (the paper's 'communication proportional to the
        outcome' property)."""
        query = OutlierQuery(NearestNeighborDistance(), n=1)

        def build(copies):
            datasets = {
                node: [
                    make_point([20.0 + 0.001 * i, 0.0], origin=node, epoch=i)
                    for i in range(copies)
                ]
                for node in (0, 1)
            }
            datasets[0].append(make_point([90.0, 0.0], origin=0, epoch=999))
            detectors, network = _run_global(query, {0: [1], 1: []}, datasets)
            return network.log.point_transmissions

        small = build(5)
        large = build(50)
        assert large <= small * 3


class TestSemiGlobalConvergence:
    def test_terminates_on_random_topologies(self):
        rng = random.Random(11)
        for trial in range(5):
            sensors = rng.randint(3, 7)
            adjacency = random_connected_adjacency(rng, sensors)
            datasets = random_dataset(rng, sensors, per_sensor=3)
            query = OutlierQuery(NearestNeighborDistance(), n=2)
            detectors = {
                i: SemiGlobalOutlierDetector(i, query, hop_diameter=2) for i in adjacency
            }
            network = InMemoryNetwork(detectors, adjacency, seed=trial)
            network.inject_local_data(datasets)
            deliveries = network.run_to_quiescence(max_deliveries=50_000)
            assert deliveries < 50_000

    def test_exact_on_fully_connected_network(self):
        """With every pair in direct range the d=1 neighborhood is the whole
        network, so the semi-global answer coincides with the global one."""
        rng = random.Random(5)
        sensors = 5
        adjacency = {i: [j for j in range(sensors) if j != i] for i in range(sensors)}
        datasets = random_dataset(rng, sensors, per_sensor=4)
        query = OutlierQuery(NearestNeighborDistance(), n=2)
        detectors = {
            i: SemiGlobalOutlierDetector(i, query, hop_diameter=1) for i in adjacency
        }
        network = InMemoryNetwork(detectors, adjacency, seed=1)
        network.inject_local_data(datasets)
        network.run_to_quiescence()
        reference = {p.rest for p in global_reference(query, datasets)}
        for det in detectors.values():
            assert {p.rest for p in det.estimate()} == reference

    def test_high_accuracy_on_random_topologies(self):
        """The refined variant gets the vast majority of node estimates
        exactly right even on sparse random graphs."""
        rng = random.Random(21)
        exact = total = 0
        for trial in range(8):
            sensors = rng.randint(3, 8)
            d = rng.randint(1, 3)
            adjacency = random_connected_adjacency(rng, sensors)
            datasets = random_dataset(rng, sensors, per_sensor=4)
            query = OutlierQuery(NearestNeighborDistance(), n=2)
            detectors = {
                i: SemiGlobalOutlierDetector(i, query, hop_diameter=d) for i in adjacency
            }
            network = InMemoryNetwork(detectors, adjacency, seed=trial)
            network.inject_local_data(datasets)
            network.run_to_quiescence()
            for i in adjacency:
                reference = {
                    p.rest
                    for p in semi_global_reference(query, datasets, adjacency, i, d)
                }
                estimate = {p.rest for p in detectors[i].estimate()}
                exact += reference == estimate
                total += 1
        assert exact / total >= 0.8

    def test_holdings_never_exceed_hop_budget(self):
        rng = random.Random(2)
        adjacency = {0: [1], 1: [2], 2: [3], 3: [4], 4: []}
        datasets = random_dataset(rng, 5, per_sensor=3)
        query = OutlierQuery(NearestNeighborDistance(), n=2)
        d = 2
        detectors = {
            i: SemiGlobalOutlierDetector(i, query, hop_diameter=d) for i in adjacency
        }
        network = InMemoryNetwork(detectors, adjacency, seed=0)
        network.inject_local_data(datasets)
        network.run_to_quiescence()
        for node, det in detectors.items():
            for point in det.holdings:
                assert abs(point.origin - node) <= d  # chain topology: |i-j| = hops
