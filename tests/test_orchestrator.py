"""Tests for the sweep orchestrator: executor, result store, registry.

The load-bearing guarantees:

* parallel execution is byte-identical to serial execution (scenarios are
  pure functions of their configuration);
* the store key is a faithful canonical encoding of the scenario -- distinct
  configurations never collide, and no field is silently ignored;
* a corrupted or truncated store entry is a cache miss, never a crash;
* a warm store satisfies a repeated sweep with zero simulations.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.experiments  # noqa: F401  (importing registers the sweep families)
from repro.core.config import Algorithm, DetectionConfig
from repro.orchestrator import (
    ResultStore,
    all_families,
    canonical_scenario_json,
    clear_memory,
    family_names,
    get_family,
    run_one,
    run_scenarios,
    scenario_key,
)
from repro.orchestrator import executor as executor_module
from repro.wsn.results import SimulationResult
from repro.wsn.runner import run_scenario
from repro.wsn.scenario import ScenarioConfig


def tiny_scenario(seed: int = 0, **overrides) -> ScenarioConfig:
    """A scenario small enough to simulate in a fraction of a second."""
    base = dict(
        detection=DetectionConfig(window_length=3),
        node_count=6,
        rounds=4,
        seed=seed,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


@pytest.fixture(autouse=True)
def fresh_memory():
    """Isolate every test from the process-wide memory tier."""
    clear_memory()
    yield
    clear_memory()


# ----------------------------------------------------------------------
# Determinism: parallel == serial, byte for byte
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_sweep_is_byte_identical_to_serial(self, tmp_path):
        scenarios = [tiny_scenario(seed=s) for s in range(4)]

        serial_store = ResultStore(tmp_path / "serial")
        serial = run_scenarios(scenarios, workers=1, store=serial_store)

        clear_memory()
        parallel_store = ResultStore(tmp_path / "parallel")
        parallel = run_scenarios(scenarios, workers=4, store=parallel_store)

        for left, right in zip(serial, parallel):
            assert left.canonical_json() == right.canonical_json()
        # The serialised files themselves are byte-identical up to the
        # wallclock field, which canonical_json strips; compare the full
        # decoded payloads instead of raw bytes for a sharper error message.
        for scenario in scenarios:
            left_payload = json.loads(serial_store.path_for(scenario).read_text())
            right_payload = json.loads(parallel_store.path_for(scenario).read_text())
            left_payload.pop("wallclock_seconds")
            right_payload.pop("wallclock_seconds")
            assert left_payload == right_payload

    def test_worker_results_match_direct_execution(self):
        # Two distinct misses, so the executor genuinely takes the pool
        # path (a single miss falls back to inline execution).
        scenarios = [tiny_scenario(seed=7), tiny_scenario(seed=8)]
        direct = [run_scenario(s) for s in scenarios]
        clear_memory()
        pooled = run_scenarios(scenarios, workers=2)
        for left, right in zip(direct, pooled):
            assert left.canonical_json() == right.canonical_json()

    def test_duplicates_resolve_to_the_same_object(self):
        scenario = tiny_scenario()
        first, second = run_scenarios([scenario, scenario], workers=1)
        assert first is second


# ----------------------------------------------------------------------
# Cache-key hygiene
# ----------------------------------------------------------------------
class TestStoreKeys:
    def test_distinct_scenarios_never_collide(self):
        base = tiny_scenario()
        variants = [
            base,
            tiny_scenario(seed=1),
            tiny_scenario(node_count=7),
            tiny_scenario(rounds=5),
            tiny_scenario(loss_probability=0.1),
            tiny_scenario(missing_probability=0.05),
            tiny_scenario(sampling_period=15.0),
            tiny_scenario(use_static_routing=True),
            tiny_scenario(broadcast_jitter=0.1),
            base.with_detection(DetectionConfig(window_length=4)),
            base.with_detection(DetectionConfig(window_length=3, ranking="knn")),
            base.with_detection(DetectionConfig(window_length=3, indexed=False)),
            base.with_detection(
                DetectionConfig(
                    window_length=3, algorithm=Algorithm.SEMI_GLOBAL, hop_diameter=2
                )
            ),
        ]
        keys = {scenario_key(v) for v in variants}
        assert len(keys) == len(variants)

    def test_equal_scenarios_share_a_key(self):
        assert scenario_key(tiny_scenario()) == scenario_key(tiny_scenario())

    def test_canonical_encoding_round_trips(self):
        scenario = tiny_scenario(
            seed=3,
            loss_probability=0.05,
            use_static_routing=True,
        ).with_detection(
            DetectionConfig(
                algorithm=Algorithm.SEMI_GLOBAL,
                ranking="knn",
                window_length=3,
                hop_diameter=2,
            )
        )
        decoded = ScenarioConfig.from_json_dict(
            json.loads(canonical_scenario_json(scenario))
        )
        assert decoded == scenario
        assert scenario_key(decoded) == scenario_key(scenario)

    def test_every_field_is_part_of_the_encoding(self):
        """A newly added scenario knob can never be silently ignored: the
        canonical encoding enumerates dataclass fields automatically."""
        encoded = json.loads(canonical_scenario_json(tiny_scenario()))
        for field in dataclasses.fields(ScenarioConfig):
            assert field.name in encoded
        for field in dataclasses.fields(DetectionConfig):
            assert field.name in encoded["detection"]

    def test_unknown_fields_are_rejected_on_decode(self):
        payload = json.loads(canonical_scenario_json(tiny_scenario()))
        payload["brand_new_knob"] = 42
        with pytest.raises(TypeError):
            ScenarioConfig.from_json_dict(payload)


# ----------------------------------------------------------------------
# Store robustness
# ----------------------------------------------------------------------
class TestStoreRobustness:
    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(tiny_scenario()) is None

    def test_truncated_entry_is_a_miss_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        result = run_one(scenario, store=store)
        path = store.path_for(scenario)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        assert store.get(scenario) is None
        clear_memory()
        recomputed = run_one(scenario, store=store)
        assert recomputed.canonical_json() == result.canonical_json()
        # The recompute healed the entry on disk.
        assert store.get(scenario) is not None

    def test_unparseable_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        store.path_for(scenario).write_text("this is not json {")
        assert store.get(scenario) is None

    def test_entry_for_a_different_scenario_is_a_miss(self, tmp_path):
        """A decodable entry whose embedded scenario differs from the request
        (hash collision, or a key that ignored a field) must not be served."""
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        other = tiny_scenario(seed=99)
        result = run_one(other, store=None)
        store.path_for(scenario).write_text(
            json.dumps(result.to_json_dict(), sort_keys=True)
        )
        assert store.get(scenario) is None

    def test_result_json_round_trip_preserves_everything(self):
        result = run_scenario(tiny_scenario(loss_probability=0.1))
        clone = SimulationResult.from_json_dict(result.to_json_dict())
        assert clone.scenario == result.scenario
        assert clone.estimates == result.estimates
        assert clone.references == result.references
        assert clone.protocol_stats == result.protocol_stats
        assert clone.accuracy.exact == result.accuracy.exact
        assert clone.accuracy.similarity == result.accuracy.similarity
        assert clone.channel.as_dict() == result.channel.as_dict()
        assert clone.energy.totals() == result.energy.totals()
        assert clone.energy.rounds == result.energy.rounds
        assert clone.events_executed == result.events_executed
        assert clone.canonical_json() == result.canonical_json()

    def test_clear_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        run_scenarios([tiny_scenario(seed=s) for s in range(2)], store=store)
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


# ----------------------------------------------------------------------
# Store health (quarantine visibility)
# ----------------------------------------------------------------------
class TestStoreHealth:
    def test_empty_store_is_healthy(self, tmp_path):
        health = ResultStore(tmp_path / "never-created").health()
        assert (health.entries, health.corrupt, health.poison) == (0, 0, 0)
        assert health.quarantined == 0

    def test_quarantined_corruption_is_counted(self, tmp_path):
        """A corrupt entry must not vanish: the miss moves it aside and
        ``health()`` surfaces it, instead of the recompute silently
        overwriting the evidence."""
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        run_one(scenario, store=store)
        store.path_for(scenario).write_text("this is not json {")

        assert store.get(scenario) is None
        health = store.health()
        assert health.entries == 0  # the bad file was moved, not served
        assert health.corrupt == 1
        assert health.quarantined == 1
        assert store.corrupt_entries() == [
            store.path_for(scenario).with_suffix(".corrupt")
        ]

    def test_recompute_heals_the_entry_but_keeps_the_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        run_one(scenario, store=store)
        store.path_for(scenario).write_text("garbage")
        assert store.get(scenario) is None
        clear_memory()
        run_one(scenario, store=store)

        health = store.health()
        assert health.entries == 1
        assert health.corrupt == 1  # the fault stays observable

    def test_poison_markers_are_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario(seed=11)
        store.record_poison(scenario, reason="worker crashed", attempts=3)
        health = store.health()
        assert health.poison == 1
        assert health.entries == 0  # markers never match the entry glob
        assert health.quarantined == 1


# ----------------------------------------------------------------------
# Store-only mode (the report pipeline's no-simulation contract)
# ----------------------------------------------------------------------
class TestStoreOnly:
    def test_miss_raises_instead_of_simulating(self, tmp_path, monkeypatch):
        from repro.core.errors import ExperimentError

        monkeypatch.setenv(executor_module.STORE_ONLY_ENV, "1")
        with pytest.raises(ExperimentError, match="store-only"):
            run_scenarios([tiny_scenario()], store=ResultStore(tmp_path))

    def test_warm_tiers_still_serve(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        cold = run_scenarios([scenario], store=store)[0]
        clear_memory()

        monkeypatch.setenv(executor_module.STORE_ONLY_ENV, "1")
        warm = run_scenarios([scenario], store=store)[0]
        assert warm.canonical_json() == cold.canonical_json()

    def test_disabled_values_fall_through(self, monkeypatch):
        monkeypatch.setenv(executor_module.STORE_ONLY_ENV, "0")
        assert not executor_module.store_only_active()
        monkeypatch.setenv(executor_module.STORE_ONLY_ENV, "")
        assert not executor_module.store_only_active()
        monkeypatch.delenv(executor_module.STORE_ONLY_ENV, raising=False)
        assert not executor_module.store_only_active()


# ----------------------------------------------------------------------
# Warm-store behaviour
# ----------------------------------------------------------------------
class TestWarmStore:
    def test_warm_store_performs_zero_simulations(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        scenarios = [tiny_scenario(seed=s) for s in range(3)]
        cold = run_scenarios(scenarios, workers=1, store=store)

        # A fresh process is simulated by clearing the memory tier; any
        # attempt to actually simulate would now blow up.
        clear_memory()

        def forbidden(_scenario):
            raise AssertionError("warm sweep must not simulate anything")

        monkeypatch.setattr(executor_module, "run_scenario_worker", forbidden)
        events = []
        warm = run_scenarios(
            scenarios,
            workers=1,
            store=store,
            progress=lambda event, *_: events.append(event),
        )
        assert events == ["store", "store", "store"]
        for left, right in zip(cold, warm):
            assert left.canonical_json() == right.canonical_json()

    def test_memory_tier_is_preferred_over_store(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario()
        run_scenarios([scenario], store=store)
        monkeypatch.setattr(
            store, "get", lambda *_: pytest.fail("memory hit must not touch disk")
        )
        events = []
        run_scenarios(
            [scenario],
            store=store,
            progress=lambda event, *_: events.append(event),
        )
        assert events == ["memory"]

    def test_interrupted_sweep_resumes(self, tmp_path):
        """Only the missing part of a partially persisted grid is computed."""
        store = ResultStore(tmp_path)
        scenarios = [tiny_scenario(seed=s) for s in range(4)]
        run_scenarios(scenarios[:2], workers=1, store=store)
        clear_memory()

        events = []
        run_scenarios(
            scenarios,
            workers=1,
            store=store,
            progress=lambda event, *_: events.append(event),
        )
        assert events.count("store") == 2
        assert events.count("computed") == 2


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_expected_families_registered(self):
        names = family_names()
        for expected in [
            "figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
            "accuracy", "imbalance", "example51", "stress-loss", "scaling-nodes",
        ]:
            assert expected in names

    def test_unknown_family_raises(self):
        with pytest.raises(Exception):
            get_family("no-such-sweep")

    def test_families_build_valid_scenarios(self):
        from repro.experiments import TINY_PROFILE

        for family in all_families():
            scenarios = family.build(TINY_PROFILE)
            assert all(isinstance(s, ScenarioConfig) for s in scenarios)
            if family.name != "example51":
                assert scenarios, f"{family.name} built an empty grid"

    def test_figure_grid_covers_the_report(self, tmp_path, monkeypatch):
        """Resolving a family's grid makes its report a pure cache read."""
        from repro.experiments import TINY_PROFILE

        family = get_family("imbalance")
        store = ResultStore(tmp_path)
        run_scenarios(family.build(TINY_PROFILE), workers=1, store=store)

        def forbidden(_scenario):
            raise AssertionError("report must be served from cache")

        monkeypatch.setattr(executor_module, "run_scenario_worker", forbidden)
        figures = family.report(TINY_PROFILE)
        assert figures


# ----------------------------------------------------------------------
# Environment-driven worker defaults
# ----------------------------------------------------------------------
class TestDefaultWorkers:
    def test_generic_variable_is_the_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_WSN_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert executor_module.default_workers() == 3

    def test_wsn_override_takes_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_WSN_WORKERS", "7")
        assert executor_module.default_workers() == 7

    def test_wsn_override_is_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WSN_WORKERS", "0")
        assert executor_module.default_workers() == 1
        monkeypatch.setenv("REPRO_WSN_WORKERS", "-4")
        assert executor_module.default_workers() == 1

    def test_wsn_override_must_be_an_integer(self, monkeypatch):
        from repro.core.errors import ExperimentError

        monkeypatch.setenv("REPRO_WSN_WORKERS", "many")
        with pytest.raises(ExperimentError):
            executor_module.default_workers()

    def test_blank_wsn_override_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_WSN_WORKERS", "  ")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert executor_module.default_workers() == 2


# ----------------------------------------------------------------------
# Sharded misses through the executor
# ----------------------------------------------------------------------
class TestExecutorShards:
    def test_sharded_misses_match_the_plain_path(self, tmp_path):
        scenario = tiny_scenario()
        plain = run_scenarios([scenario])[0]
        clear_memory()
        events = []
        sharded = run_scenarios(
            [scenario],
            shards=2,
            progress=lambda event, *_: events.append(event),
        )[0]
        assert events == ["computed"]
        assert sharded.canonical_json() == plain.canonical_json()

    def test_sharded_store_entry_is_byte_identical(self, tmp_path):
        scenario = tiny_scenario(seed=5)
        cold_store = ResultStore(tmp_path / "cold")
        shard_store = ResultStore(tmp_path / "shard")
        run_scenarios([scenario], store=cold_store)
        clear_memory()
        run_scenarios([scenario], store=shard_store, shards=2)
        assert cold_store.get(scenario).canonical_json() == \
            shard_store.get(scenario).canonical_json()
