"""Benchmark regenerating the accuracy claim of Section 7.1 (~99% of sensors
converge to the correct answer; errors attributed to dropped packets)."""

from conftest import emit_report

from repro.experiments import run_accuracy_experiment


def test_bench_accuracy(benchmark, profile):
    figure = benchmark.pedantic(
        run_accuracy_experiment,
        kwargs={"window": profile.window_sizes[0]},
        rounds=1,
        iterations=1,
    )
    emit_report("accuracy", [figure])

    lossless = 0  # index of loss probability 0.0
    # Without packet loss the exact algorithms are exact everywhere and the
    # semi-global heuristic is right for the vast majority of sensors.
    assert figure.series_for("Global-NN")[lossless] == 1.0
    assert figure.series_for("Global-KNN")[lossless] == 1.0
    assert figure.series_for("Centralized")[lossless] == 1.0
    assert figure.series_for("Semi-global, epsilon=1")[lossless] >= 0.75
    assert figure.series_for("Semi-global, epsilon=2")[lossless] >= 0.75
    # With loss (and no retransmissions) accuracy may degrade but a majority
    # of sensors still converge to the correct answer.
    lossy = len(figure.x_values) - 1
    assert figure.series_for("Global-NN")[lossy] >= 0.5
