"""Benchmark regenerating Figure 8: TX/RX energy per round vs. window size
for semi-global (localized) detection with the KNN ranking function."""

from conftest import emit_report

from repro.experiments import run_figure8


def test_bench_figure8(benchmark, profile):
    tx, rx = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    emit_report("figure8", [tx, rx])

    for figure in (tx, rx):
        for index in range(len(figure.x_values)):
            centralized = figure.series_for("Centralized")[index]
            for epsilon in profile.hop_diameters:
                label = f"Semi-global, epsilon={epsilon}"
                assert figure.series_for(label)[index] < centralized
