"""Benchmark regenerating Figure 9: TX/RX energy per round vs. the number of
reported outliers n, for semi-global (localized) KNN detection."""

from conftest import emit_report

from repro.experiments import run_figure9


def test_bench_figure9(benchmark, profile):
    tx, rx = benchmark.pedantic(
        run_figure9, kwargs={"window": profile.window_sizes[-1]}, rounds=1, iterations=1
    )
    emit_report("figure9", [tx, rx])

    for figure in (tx, rx):
        counts = figure.x_values
        for epsilon in profile.hop_diameters:
            label = f"Semi-global, epsilon={epsilon}"
            series = figure.series_for(label)
            # Energy grows with the number of reported outliers (weakly: the
            # smallest n is never more expensive than the largest n).
            assert series[0] <= series[-1] * 1.05
            # And stays below the centralized baseline everywhere.
            for index in range(len(counts)):
                assert series[index] < figure.series_for("Centralized")[index]
