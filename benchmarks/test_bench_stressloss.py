"""Benchmark running the ``stress-loss`` registry sweep: accuracy and energy
of every algorithm as per-receiver packet loss grows from 0 to 20%.

This is the first workload that exists purely because the sweep orchestrator
makes new scenario families cheap to declare -- it is not a figure of the
paper, but it quantifies the paper's side remark that convergence errors
come from dropped packets: exact global consensus collapses quickly under
loss, while the semi-global algorithm (whose correctness is per-neighborhood)
degrades gracefully.
"""

from conftest import emit_report

from repro.experiments import run_stress_loss
from repro.experiments.sweeps import LOSS_GRID


def test_bench_stress_loss(benchmark, profile):
    accuracy, energy = benchmark.pedantic(
        lambda: run_stress_loss(profile), rounds=1, iterations=1
    )
    emit_report("stressloss", [accuracy, energy])

    lossless, worst = 0, len(LOSS_GRID) - 1
    for label in accuracy.series:
        # Every algorithm converges exactly on a lossless channel, and none
        # does better on the lossiest channel than on the lossless one.
        assert accuracy.series_for(label)[lossless] == 1.0
        assert accuracy.series_for(label)[worst] <= accuracy.series_for(label)[lossless]
        assert all(value > 0 for value in energy.series_for(label))
    # Shipping whole windows to a sink stays the most expensive strategy at
    # every loss level.
    for index in range(len(LOSS_GRID)):
        assert energy.series_for("Centralized")[index] == max(
            energy.series_for(label)[index] for label in energy.series
        )
