"""Benchmarks for the fault-and-churn sweep families.

Neither is a figure of the paper; both make its *robustness narrative*
executable.  ``fault-churn`` drives node crash/recovery and duty-cycle
sleep at increasing intensity and reports availability, convergence
accuracy, injected-fault precision and data-level detection latency;
``burst-loss`` compares correlated Gilbert-Elliott loss against i.i.d.
loss at matched average rates, isolating what loss *correlation* costs the
protocol beyond raw loss volume.
"""

from conftest import emit_report

from repro.experiments.sweeps import (
    BURST_RATES,
    CHURN_LEVELS,
    run_burst_loss,
    run_fault_churn,
)


def test_bench_fault_churn(benchmark, profile):
    figures = benchmark.pedantic(
        lambda: run_fault_churn(profile), rounds=1, iterations=1
    )
    emit_report("faultchurn", figures)

    availability, accuracy, _precision, _latency = figures
    static_index = 0
    for label in availability.series:
        series = availability.series_for(label)
        # The static level is the no-churn world ...
        assert series[static_index] == 1.0
        # ... and churn can only reduce planned availability.
        assert all(value <= 1.0 for value in series)
        assert series[-1] < 1.0  # the heavy level really takes nodes down
    for label in accuracy.series:
        series = accuracy.series_for(label)
        assert series[static_index] == 1.0  # loss-free static => exact
        assert all(0.0 <= value <= 1.0 for value in series)
    assert len(availability.x_values) == len(CHURN_LEVELS)


def test_bench_burst_loss(benchmark, profile):
    figures = benchmark.pedantic(
        lambda: run_burst_loss(profile), rounds=1, iterations=1
    )
    emit_report("burstloss", figures)

    _accuracy, similarity, observed = figures
    assert len(observed.x_values) == len(BURST_RATES)
    for label in observed.series:
        for rate, value in zip(BURST_RATES, observed.series_for(label)):
            # Both channel models operate near the requested average rate
            # (loose bound: tiny grids have few deliveries to average over).
            assert 0.0 < value < 3.0 * rate + 0.05
    for label in similarity.series:
        assert all(0.0 <= value <= 1.0 for value in similarity.series_for(label))
