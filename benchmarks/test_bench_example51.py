"""Benchmark regenerating the Section 5.1 worked example: the distributed
protocol transmits a handful of points where naive centralisation transmits
(at least) the smaller of the two datasets."""

from conftest import emit_report

from repro.experiments import run_example51


def test_bench_example51(benchmark):
    figure = benchmark.pedantic(run_example51, rounds=1, iterations=1)
    emit_report("example51", [figure])

    distributed = figure.series_for("distributed (points sent)")
    centralised = figure.series_for("centralised on one sensor (points sent)")
    correct = figure.series_for("both sensors correct")
    assert all(flag == 1.0 for flag in correct)
    # The distributed cost stays (far) below centralisation and does not grow
    # with the dataset size, while the centralised cost does.
    for d, c in zip(distributed, centralised):
        assert d < c
    assert centralised[-1] > centralised[0]
    assert distributed[-1] <= distributed[0] + 2
