"""Benchmark regenerating Figure 6: per-node energy normalised by the
network average, per algorithm, for selected window sizes."""

from conftest import emit_report

from repro.experiments import run_figure6


def test_bench_figure6(benchmark, profile):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    emit_report("figure6", results)

    # In every reported window size the centralized baseline (algorithm index
    # 0 -- see the notes line) has the largest normalised maximum: the
    # collection point's neighborhood is its hot spot.
    for figure in results:
        maxima = figure.series_for("max")
        assert maxima[0] == max(maxima)
        # Normalised minima never exceed 1, maxima never fall below 1.
        assert all(m <= 1.0 + 1e-9 for m in figure.series_for("min"))
        assert all(m >= 1.0 - 1e-9 for m in maxima)
