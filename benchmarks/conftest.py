"""Shared benchmark infrastructure.

Each benchmark regenerates one figure of the paper, prints the corresponding
data table and writes it to ``results/<name>.txt`` so that the benchmark run
doubles as the experiment report referenced by ``EXPERIMENTS.md``.

Simulation results are resolved through the sweep orchestrator
(:mod:`repro.orchestrator`): memoised process-wide (several figures are
different views of the same sweep) and, when ``REPRO_RESULT_STORE`` points
at a directory, persisted on disk so repeated suite runs perform zero
simulations.  Set ``REPRO_BENCH_PROFILE=paper`` for the full 53-node,
four-seed configuration and ``REPRO_WORKERS=N`` to fan cache misses out
over N worker processes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit_report(name: str, figures: Iterable) -> str:
    """Print every figure's table and persist them under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    blocks = []
    for figure in figures:
        blocks.append(figure.report())
    text = "\n\n".join(blocks) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)
    return text


@pytest.fixture(scope="session")
def profile():
    """The active experiment profile (quick by default)."""
    from repro.experiments import active_profile

    return active_profile()
