"""Benchmark regenerating Figure 5: average / minimum / maximum total node
energy vs. window size for global outlier detection."""

from conftest import emit_report

from repro.experiments import run_figure5


def test_bench_figure5(benchmark, profile):
    average, minimum, maximum = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    emit_report("figure5", [average, minimum, maximum])

    largest = len(average.x_values) - 1
    # The centralized baseline's average node energy exceeds Global-NN's at
    # the largest window, and its max-min spread is the widest.
    assert (
        average.series_for("Centralized")[largest]
        > average.series_for("Global-NN")[largest]
    )
    central_spread = (
        maximum.series_for("Centralized")[largest]
        - minimum.series_for("Centralized")[largest]
    )
    nn_spread = (
        maximum.series_for("Global-NN")[largest]
        - minimum.series_for("Global-NN")[largest]
    )
    assert central_spread > nn_spread
