"""Benchmark regenerating the Section 8 traffic-concentration claim: under
the centralized baseline the collection point's neighborhood consumes a
disproportionate share of the energy; in-network detection balances it."""

from conftest import emit_report

from repro.experiments import run_imbalance_experiment


def test_bench_imbalance(benchmark, profile):
    figure = benchmark.pedantic(
        run_imbalance_experiment,
        kwargs={"window": profile.window_sizes[0]},
        rounds=1,
        iterations=1,
    )
    emit_report("imbalance", [figure])

    sink_ratio = figure.series_for("sink-neighborhood energy / network average")
    max_ratio = figure.series_for("hottest node energy / network average")
    # Index 0 is the centralized baseline (see the notes line); it is more
    # concentrated than both distributed configurations on both measures.
    assert sink_ratio[0] > sink_ratio[1]
    assert sink_ratio[0] > sink_ratio[2]
    assert max_ratio[0] > max_ratio[1]
