"""Benchmark regenerating Figure 7: TX/RX energy per round vs. window size
for semi-global (localized) detection with the NN ranking function."""

from conftest import emit_report

from repro.experiments import run_figure7


def test_bench_figure7(benchmark, profile):
    tx, rx = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    emit_report("figure7", [tx, rx])

    for figure in (tx, rx):
        for index in range(len(figure.x_values)):
            centralized = figure.series_for("Centralized")[index]
            # Every semi-global configuration is cheaper than centralizing.
            for epsilon in profile.hop_diameters:
                label = f"Semi-global, epsilon={epsilon}"
                assert figure.series_for(label)[index] < centralized
        # Energy grows with the spatial extent epsilon (at the largest w).
        last = len(figure.x_values) - 1
        eps = sorted(profile.hop_diameters)
        series_at_last = [
            figure.series_for(f"Semi-global, epsilon={e}")[last] for e in eps
        ]
        assert series_at_last[0] <= series_at_last[-1]
