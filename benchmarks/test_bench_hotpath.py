"""Micro-benchmark of the detector hot path: incremental index vs rebuild.

Every sampling round a sensor processes one combined data-change event (one
arrival plus one eviction at a steady window of ``n`` points) and rebuilds
its estimate, support sets and per-neighbor sufficient sets.  The seed
implementation recomputed all of that from scratch -- an ``O(n²·d)``
pairwise-distance matrix per scoring call; the
:class:`~repro.core.index.NeighborhoodIndex` engine maintains the geometry
incrementally in ``O(Δ·n)``.

This benchmark records the per-event latency of both paths at
``n ∈ {64, 256, 1024}`` (so the speedup shows up in the ``BENCH_*.json``
trajectories) and asserts the acceptance criterion: at the largest window
the indexed engine must beat the full-recompute oracle by at least 5x.

A note on the baseline: the oracle here is the *current* brute-force path,
whose distance matrix is computed pair-by-pair with ``math.dist`` so that
every code path rounds identically (see ``_pairwise_distances``).  That is
slower than the seed's vectorised-numpy matrix; against that original
implementation (~87 ms/event at n=1024 on the same machine) the indexed
engine still measured ~7-9x, so the 5x floor holds under either baseline.
"""

from __future__ import annotations

import random
import time

from conftest import RESULTS_DIR

from repro.core import (
    AverageKNNDistance,
    GlobalOutlierDetector,
    OutlierQuery,
    make_point,
)

WINDOW_SIZES = (64, 256, 1024)
#: Measured events per configuration; the brute path at n=1024 runs ~90 ms
#: per event, so the counts are kept asymmetric to bound suite runtime.
EVENTS = {True: {64: 60, 256: 30, 1024: 15}, False: {64: 20, 256: 10, 1024: 4}}


def _steady_state_detector(n: int, indexed: bool, events: int):
    """A detector holding ``n`` points plus the stream that keeps it there."""
    rng = random.Random(1234)
    query = OutlierQuery(AverageKNNDistance(k=4), n=4)
    detector = GlobalOutlierDetector(0, query, neighbors=[1, 2], indexed=indexed)
    stream = [
        make_point(
            [rng.gauss(20.0, 1.0), rng.uniform(0, 50), rng.uniform(0, 50)],
            origin=0,
            epoch=epoch,
        )
        for epoch in range(n + events)
    ]
    detector.add_local_points(stream[:n])
    detector.initialize()
    return detector, stream


def _per_event_latency(n: int, indexed: bool) -> float:
    events = EVENTS[indexed][n]
    detector, stream = _steady_state_detector(n, indexed, events)
    started = time.perf_counter()
    for i in range(events):
        detector.update_local_data([stream[n + i]], [stream[i]])
    return (time.perf_counter() - started) / events


def test_bench_hotpath(benchmark):
    latencies = {}
    for n in WINDOW_SIZES:
        latencies[(n, False)] = _per_event_latency(n, indexed=False)

    # The pytest-benchmark entry tracks the indexed path across the window
    # sweep so regressions of the engine itself show up in BENCH trajectories.
    def indexed_sweep():
        for n in WINDOW_SIZES:
            latencies[(n, True)] = _per_event_latency(n, indexed=True)

    benchmark.pedantic(indexed_sweep, rounds=1, iterations=1)

    lines = ["Per-event detector latency (steady window, 1 add + 1 evict)", ""]
    lines.append(f"{'window':>8} {'indexed ms':>12} {'rebuild ms':>12} {'speedup':>9}")
    for n in WINDOW_SIZES:
        fast = latencies[(n, True)] * 1e3
        slow = latencies[(n, False)] * 1e3
        lines.append(f"{n:>8} {fast:>12.3f} {slow:>12.3f} {slow / fast:>8.1f}x")
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "hotpath.txt").write_text(text)
    print()
    print(text)

    speedup_at_largest = latencies[(1024, False)] / latencies[(1024, True)]
    assert speedup_at_largest >= 5.0, (
        f"indexed engine is only {speedup_at_largest:.1f}x faster than the "
        f"full-recompute path at window 1024 (acceptance floor is 5x)"
    )
    # The index must also win at every measured window, not just the largest.
    for n in WINDOW_SIZES:
        assert latencies[(n, True)] < latencies[(n, False)]
