"""Micro-benchmark of the detector hot path: flat-array engine vs rebuild.

Every sampling round a sensor processes one combined data-change event (one
arrival plus one eviction at a steady window of ``n`` points) and rebuilds
its estimate, support sets and per-neighbor sufficient sets.  The seed
implementation recomputed all of that from scratch -- an ``O(n²·d)``
pairwise-distance matrix per scoring call; the flat-array
:class:`~repro.core.index.NeighborhoodIndex` engine maintains the geometry
incrementally and the :class:`~repro.core.rescoring.ScoreCache` rescores
only the dirty set on each event.

The measurement harness is shared with the ``repro-wsn bench`` CLI
subcommand (:mod:`repro.bench`), which emits the machine-readable
``BENCH_hotpath.json`` / ``BENCH_e2e.json`` artifacts CI thresholds; this
pytest entry records the same sweep at ``n ∈ {64, 256, 1024}``, refreshes
``results/hotpath.txt`` and asserts the acceptance criteria: at the
largest window the incremental engine must beat the full-recompute oracle
by at least 5x, and batched event application must amortize at least 2.5x
below the per-event indexed path (conservative CI floor; the reference
machine measures 4-5x at batch size 64).

A note on the baseline: the oracle here is the *current* brute-force path,
whose distance matrix is computed pair-by-pair with ``math.dist`` so that
every code path rounds identically (see ``_pairwise_distances``).  That is
slower than the seed's vectorised-numpy matrix; against that original
implementation (~87 ms/event at n=1024 on the reference machine) the
flat-array engine with dirty-set rescoring still clears the floor with a
wide margin.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import (
    DEFAULT_WINDOWS,
    measure_event_latency,
    render_hotpath_table,
    run_hotpath_bench,
)

#: Computed directly (not via the benchmarks conftest) so this module also
#: imports cleanly in mixed tests+benchmarks pytest invocations, where the
#: top-level ``conftest`` name can resolve to either directory's conftest.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

WINDOW_SIZES = DEFAULT_WINDOWS


def test_bench_hotpath(benchmark):
    payload = {}

    def full_sweep():
        # One call measures both paths per window; the pytest-benchmark
        # entry therefore tracks the whole sweep so regressions of either
        # engine show up in BENCH trajectories.
        payload.update(run_hotpath_bench(WINDOW_SIZES))

    benchmark.pedantic(full_sweep, rounds=1, iterations=1)

    text = render_hotpath_table(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "hotpath.txt").write_text(text)
    print()
    print(text)

    rows = {row["window"]: row for row in payload["windows"]}
    speedup_at_largest = rows[max(WINDOW_SIZES)]["speedup"]
    assert speedup_at_largest >= 5.0, (
        f"indexed engine is only {speedup_at_largest:.1f}x faster than the "
        f"full-recompute path at window {max(WINDOW_SIZES)} "
        f"(acceptance floor is 5x)"
    )
    # The index must also win at every measured window, not just the largest.
    for window in WINDOW_SIZES:
        assert rows[window]["indexed_ms"] < rows[window]["rebuild_ms"]
    # Batched event application must amortize well below the per-event
    # indexed path at the largest window.  The floor here is deliberately
    # conservative (the reference machine measures 4-5x at batch size 64);
    # the real numbers are recorded in the committed BENCH artifacts.
    largest = rows[max(WINDOW_SIZES)]
    assert largest["batched_speedup"] is not None, "batch sweep was empty"
    assert largest["batched_speedup"] >= 2.5, (
        f"batched application is only {largest['batched_speedup']:.1f}x "
        f"faster than per-event at window {max(WINDOW_SIZES)} "
        f"(batch size {largest['batch_size']}; conservative floor is 2.5x)"
    )


def test_bench_hotpath_harness_is_deterministic():
    """The shared harness must measure the same protocol work every call:
    two runs at the same window see identical streams and end in identical
    detector state (the latency itself of course varies)."""
    from repro.bench import steady_state_detector

    states = []
    for _ in range(2):
        detector, stream = steady_state_detector(64, True, 3)
        for i in range(3):
            detector.update_local_data([stream[64 + i]], [stream[i]])
        states.append((stream, detector.holdings, detector.estimate()))
    (stream_a, holdings_a, estimate_a), (stream_b, holdings_b, estimate_b) = states
    assert stream_a == stream_b
    assert holdings_a == holdings_b
    assert estimate_a == estimate_b
    latency, events = measure_event_latency(64, True, events=3)
    assert events == 3 and latency > 0
