"""Micro-benchmark of the metric kernels: vectorized vs pointwise loops.

The scoring hot paths batch their distance work through
:meth:`~repro.core.metrics.Metric.pairwise` (the bulk oracle's matrix) and
:meth:`~repro.core.metrics.Metric.rows` (the index's per-add distance row).
This benchmark measures what that batching buys per metric against the
equivalent pure-Python pointwise loops, at a window-sized workload
(n = 256 points, d = 4 attributes -- the multi-attribute scenario shape).

Expectations encoded below:

* every *vectorized* metric (Manhattan, Chebyshev, weighted Euclidean,
  Mahalanobis) must beat its pointwise double loop by >= 3x on the pairwise
  matrix -- that is the speed the metric-space subsystem exists to deliver;
* the Euclidean kernel is deliberately a ``math.dist`` loop (bit-identity
  with the seed implementation forbids a numpy recipe, see
  :mod:`repro.core.metrics`), so it is reported for reference but only held
  to "not slower than the pointwise loop".

The numbers land in ``results/metrics.txt``.
"""

from __future__ import annotations

import random
import time

from conftest import RESULTS_DIR

from repro.core.metrics import metric_from_name, registered_metrics

POINTS = 256
DIMENSION = 4

#: Parameters sized for the 4-d (temperature, humidity, x, y) workload.
METRIC_PARAMS = {
    "weighted-euclidean": {"weights": (1.0, 0.5, 0.02, 0.02)},
    "mahalanobis": {
        "cov": (
            (9.0, 3.0, 0.0, 0.0),
            (3.0, 36.0, 0.0, 0.0),
            (0.0, 0.0, 200.0, 0.0),
            (0.0, 0.0, 0.0, 200.0),
        )
    },
}

#: Kernels are cheap enough to need several repetitions for a stable
#: reading; the pointwise double loop at n=256 is 65k scalar calls, one
#: repetition is plenty.
KERNEL_REPEATS = 5


def _workload(count: int = POINTS, dim: int = DIMENSION):
    rng = random.Random(4242)
    return [
        tuple(rng.uniform(-50.0, 50.0) for _ in range(dim)) for _ in range(count)
    ]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_metric_kernels(benchmark):
    values = _workload()
    timings = {}

    def kernel_sweep():
        for name in registered_metrics():
            metric = metric_from_name(name, **METRIC_PARAMS.get(name, {}))
            timings[(name, "pairwise")] = _time(
                lambda m=metric: m.pairwise(values), KERNEL_REPEATS
            )
            timings[(name, "rows")] = _time(
                lambda m=metric: [m.rows(v, values) for v in values[:8]],
                KERNEL_REPEATS,
            ) / 8

    # Tracked by pytest-benchmark so kernel regressions show up in the
    # BENCH_*.json trajectories.
    benchmark.pedantic(kernel_sweep, rounds=1, iterations=1)

    for name in registered_metrics():
        metric = metric_from_name(name, **METRIC_PARAMS.get(name, {}))
        dist = metric.distance

        def pointwise_matrix(d=dist):
            return [[d(a, b) for b in values] for a in values]

        timings[(name, "loop")] = _time(pointwise_matrix, 1)

    lines = [
        f"Metric kernels vs pointwise loops "
        f"(n={POINTS} points, d={DIMENSION} attributes)",
        "",
        f"{'metric':>20} {'pairwise ms':>12} {'loop ms':>10} {'speedup':>9} "
        f"{'row us':>8}",
    ]
    for name in registered_metrics():
        fast = timings[(name, "pairwise")] * 1e3
        slow = timings[(name, "loop")] * 1e3
        row_us = timings[(name, "rows")] * 1e6
        lines.append(
            f"{name:>20} {fast:>12.3f} {slow:>10.1f} "
            f"{slow / fast:>8.1f}x {row_us:>8.1f}"
        )
    lines += [
        "",
        "pairwise = full (n, n) distance-matrix kernel; loop = pure-Python "
        "pointwise double loop;",
        "row = one metric.rows() distance row (the index's per-add cost).  "
        "The Euclidean kernel is",
        "a math.dist loop by design (bit-identity with the seed paths), so "
        "its speedup is call-overhead only.",
    ]
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "metrics.txt").write_text(text)
    print()
    print(text)

    for name in registered_metrics():
        speedup = timings[(name, "loop")] / timings[(name, "pairwise")]
        if name == "euclidean":
            # Same arithmetic either way; the kernel just amortises call
            # overhead and must at least not lose.
            assert speedup >= 1.0, f"euclidean kernel slower than the loop ({speedup:.2f}x)"
        else:
            assert speedup >= 3.0, (
                f"{name} pairwise kernel is only {speedup:.1f}x faster than "
                f"the pointwise loop (floor is 3x)"
            )
