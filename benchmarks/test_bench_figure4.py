"""Benchmark regenerating Figure 4: TX/RX energy per round vs. window size
for global outlier detection (Centralized, Global-NN, Global-KNN)."""

from conftest import emit_report

from repro.experiments import run_figure4


def test_bench_figure4(benchmark, profile):
    tx, rx = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    emit_report("figure4", [tx, rx])

    windows = tx.x_values
    largest = len(windows) - 1
    # Shape checks mirroring the paper's observations: the centralized
    # baseline is the most expensive configuration at the largest window, and
    # Global-NN's cost does not grow as the window grows.
    assert tx.series_for("Centralized")[largest] > tx.series_for("Global-NN")[largest]
    assert rx.series_for("Centralized")[largest] > rx.series_for("Global-KNN")[largest]
    assert tx.series_for("Global-NN")[largest] <= tx.series_for("Global-NN")[0] * 1.25
