"""Setuptools shim.

The environment this project targets (offline lab machines) often lacks the
``wheel`` package required for PEP 660 editable installs, so a classic
``setup.py`` is provided to let ``pip install -e .`` fall back to the legacy
develop-mode code path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
